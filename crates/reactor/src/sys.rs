//! Raw Linux syscall surface for the poller: `epoll` + `eventfd`.
//!
//! This is the only module in the workspace that declares foreign
//! functions beyond `cc-serve`'s SIGHUP hook. It follows the same
//! discipline: the crate is `#![deny(unsafe_code)]` and every exception
//! below is individually `#[allow(unsafe_code)]`-annotated with the
//! invariant that makes it sound. Everything here is `pub(crate)`; the
//! safe API lives in `poller`.

use std::io;

/// `epoll_event` as the x86-64 kernel ABI defines it.
///
/// On x86-64 (the deployment target) the struct is packed — 12 bytes, no
/// padding between `events` and `data`. Other 64-bit architectures use the
/// natural 16-byte layout, hence the conditional attribute (this mirrors
/// what the real `libc` crate does).
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub(crate) struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

pub(crate) const EPOLLIN: u32 = 0x001;
pub(crate) const EPOLLERR: u32 = 0x008;
pub(crate) const EPOLLHUP: u32 = 0x010;
pub(crate) const EPOLLRDHUP: u32 = 0x2000;

pub(crate) const EPOLL_CTL_ADD: i32 = 1;
pub(crate) const EPOLL_CTL_DEL: i32 = 2;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

// Declarations for the C library the binary already links (std links
// glibc/musl on Linux). Signatures transcribed from the epoll(7) and
// eventfd(2) man pages.
#[allow(unsafe_code)] // FFI declarations; each call site re-justifies safety.
extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

/// Creates an epoll instance with `CLOEXEC` set.
pub(crate) fn epoll_create() -> io::Result<i32> {
    // SAFETY: no pointers involved; epoll_create1 allocates a kernel object
    // and returns a descriptor or -1.
    #[allow(unsafe_code)]
    let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(fd)
}

/// Registers `fd` for level-triggered readiness with the given interest
/// mask, tagging events with `token`.
pub(crate) fn epoll_add(epfd: i32, fd: i32, interests: u32, token: u64) -> io::Result<()> {
    let mut ev = EpollEvent { events: interests, data: token };
    // SAFETY: `ev` is a valid, live EpollEvent for the duration of the call;
    // the kernel copies it before returning.
    #[allow(unsafe_code)]
    let rc = unsafe { epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &mut ev) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Deregisters `fd` from the epoll instance.
pub(crate) fn epoll_del(epfd: i32, fd: i32) -> io::Result<()> {
    // A non-null event pointer is required on kernels < 2.6.9 even for DEL;
    // pass a zeroed one unconditionally.
    let mut ev = EpollEvent { events: 0, data: 0 };
    // SAFETY: as for epoll_add — `ev` outlives the call.
    #[allow(unsafe_code)]
    let rc = unsafe { epoll_ctl(epfd, EPOLL_CTL_DEL, fd, &mut ev) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Waits for events; fills `buf` and returns how many entries are valid.
///
/// A `timeout_ms` of -1 blocks indefinitely. `Interrupted` (EINTR, e.g.
/// the SIGHUP reload handler firing) is surfaced to the caller, who treats
/// it as an empty wake-up.
pub(crate) fn epoll_wait_into(
    epfd: i32,
    buf: &mut [EpollEvent],
    timeout_ms: i32,
) -> io::Result<usize> {
    let cap = i32::try_from(buf.len()).unwrap_or(i32::MAX);
    // SAFETY: `buf` is a valid writable region of `cap` EpollEvents; the
    // kernel writes at most `cap` entries and returns the count.
    #[allow(unsafe_code)]
    let rc = unsafe { epoll_wait(epfd, buf.as_mut_ptr(), cap, timeout_ms) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(rc as usize)
}

/// Creates a non-blocking `CLOEXEC` eventfd for cross-thread wake-ups.
pub(crate) fn eventfd_create() -> io::Result<i32> {
    // SAFETY: no pointers involved.
    #[allow(unsafe_code)]
    let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(fd)
}

/// Adds 1 to the eventfd counter, making it readable. Best-effort: a full
/// counter (EAGAIN) already means a wake-up is pending.
pub(crate) fn eventfd_signal(fd: i32) {
    let one: u64 = 1;
    let bytes = one.to_ne_bytes();
    // SAFETY: `bytes` is 8 valid readable bytes, the length eventfd requires.
    #[allow(unsafe_code)]
    unsafe {
        write(fd, bytes.as_ptr(), bytes.len());
    }
}

/// Drains the eventfd counter so level-triggered polls stop firing.
pub(crate) fn eventfd_drain(fd: i32) {
    let mut bytes = [0u8; 8];
    // SAFETY: `bytes` is 8 valid writable bytes; the fd is non-blocking so
    // this never hangs (EAGAIN when already drained).
    #[allow(unsafe_code)]
    unsafe {
        read(fd, bytes.as_mut_ptr(), bytes.len());
    }
}

/// Closes a descriptor owned by this module.
pub(crate) fn close_fd(fd: i32) {
    // SAFETY: callers only pass descriptors they own exclusively (created by
    // epoll_create/eventfd_create above) and never use them afterwards.
    #[allow(unsafe_code)]
    unsafe {
        close(fd);
    }
}
