//! Length-prefixed binary batch framing for the distance query plane.
//!
//! This is the wire format `POST /batch` negotiates via
//! `Content-Type: application/x-cc-batch` (see [`CONTENT_TYPE`]), and the
//! substrate the future out-of-process `cc-shard` RPC rides on. Frames are
//! fixed-width little-endian throughout so the hot path does zero decimal
//! parsing or formatting; the full byte-level layout is documented in
//! `docs/OPERATIONS.md`.
//!
//! Request frame (`8 + 8·count` bytes):
//!
//! ```text
//! offset 0   4 bytes   magic "CCBQ"
//! offset 4   4 bytes   u32 LE pair count, must be >= 1
//! offset 8   8·count   count × { u32 LE source id, u32 LE target id }
//! ```
//!
//! Response frame (`8 + 8·count` bytes):
//!
//! ```text
//! offset 0   4 bytes   magic "CCBR"
//! offset 4   4 bytes   u32 LE distance count (== request pair count)
//! offset 8   8·count   count × u64 LE distance; u64::MAX = unreachable
//! ```
//!
//! Decoders validate the declared count against the actual byte length
//! *before* allocating, so a hostile header cannot request an outsized
//! buffer, and they never panic — every malformed frame maps to a
//! [`FrameError`] the server turns into a 400.

use std::fmt;

/// Content type that selects binary framing on `POST /batch`.
pub const CONTENT_TYPE: &str = "application/x-cc-batch";

/// Magic bytes opening a request frame.
pub const REQUEST_MAGIC: [u8; 4] = *b"CCBQ";

/// Magic bytes opening a response frame.
pub const RESPONSE_MAGIC: [u8; 4] = *b"CCBR";

/// Wire sentinel for an unreachable pair (the encoding of `Dist::INF`).
pub const UNREACHABLE: u64 = u64::MAX;

/// Bytes of fixed header (magic + count) in both frame kinds.
pub const HEADER_LEN: usize = 8;

/// Bytes per entry after the header (one id pair, or one distance).
pub const ENTRY_LEN: usize = 8;

/// Why a frame failed to decode. Every variant is a client error (HTTP
/// 400), never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer than [`HEADER_LEN`] bytes: no room for magic + count.
    Truncated {
        /// Actual byte length received.
        len: usize,
    },
    /// The first four bytes were not the expected magic.
    BadMagic {
        /// The magic that was expected (`CCBQ` or `CCBR`).
        expected: [u8; 4],
    },
    /// The declared count is zero; an empty batch carries no information
    /// and is rejected rather than echoed.
    EmptyBatch,
    /// The declared count does not match the payload length.
    LengthMismatch {
        /// Count declared in the header.
        declared: u32,
        /// Byte length the declared count implies.
        expected_len: u64,
        /// Byte length actually received.
        actual_len: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated { len } => {
                write!(f, "frame truncated: {len} bytes, need at least {HEADER_LEN}")
            }
            FrameError::BadMagic { expected } => {
                // The magics are ASCII by construction.
                let magic = std::str::from_utf8(expected).unwrap_or("????");
                write!(f, "bad frame magic, expected {magic:?}")
            }
            FrameError::EmptyBatch => write!(f, "frame declares zero pairs"),
            FrameError::LengthMismatch {
                declared,
                expected_len,
                actual_len,
            } => write!(
                f,
                "frame length mismatch: {declared} entries imply {expected_len} bytes, got {actual_len}"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

/// Validates the common header and returns the entry count.
fn decode_header(bytes: &[u8], magic: [u8; 4]) -> Result<u32, FrameError> {
    if bytes.len() < HEADER_LEN {
        return Err(FrameError::Truncated { len: bytes.len() });
    }
    if bytes[..4] != magic {
        return Err(FrameError::BadMagic { expected: magic });
    }
    let count = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if count == 0 {
        return Err(FrameError::EmptyBatch);
    }
    // Widen before multiplying: a hostile count near u32::MAX must not
    // overflow the length check on 32-bit usize.
    let expected_len = HEADER_LEN as u64 + u64::from(count) * ENTRY_LEN as u64;
    if expected_len != bytes.len() as u64 {
        return Err(FrameError::LengthMismatch {
            declared: count,
            expected_len,
            actual_len: bytes.len(),
        });
    }
    Ok(count)
}

/// Encodes a request frame from id pairs.
///
/// Counts above `u32::MAX` entries are unrepresentable on the wire; the
/// count field is truncated by `as` only after the debug assertion below,
/// and callers (handler limits cap batches far below 2^32) never get near
/// it.
#[must_use]
pub fn encode_request(pairs: &[(u32, u32)]) -> Vec<u8> {
    debug_assert!(u32::try_from(pairs.len()).is_ok());
    let mut out = Vec::with_capacity(HEADER_LEN + pairs.len() * ENTRY_LEN);
    out.extend_from_slice(&REQUEST_MAGIC);
    out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
    for &(u, v) in pairs {
        out.extend_from_slice(&u.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes a request frame into id pairs.
///
/// # Errors
///
/// Any [`FrameError`] the header or payload length checks produce.
pub fn decode_request(bytes: &[u8]) -> Result<Vec<(u32, u32)>, FrameError> {
    decode_request_map(bytes, |u, v| (u, v))
}

/// Decodes a request frame, mapping each id pair through `f` in wire
/// order. This is the single-pass, single-allocation form for callers
/// that need the pairs in a different representation (the server decodes
/// straight into the `(usize, usize)` pairs its query backend takes).
///
/// # Errors
///
/// Any [`FrameError`] the header or payload length checks produce.
pub fn decode_request_map<T>(
    bytes: &[u8],
    mut f: impl FnMut(u32, u32) -> T,
) -> Result<Vec<T>, FrameError> {
    let count = decode_header(bytes, REQUEST_MAGIC)?;
    let mut pairs = Vec::with_capacity(count as usize);
    for chunk in bytes[HEADER_LEN..].chunks_exact(ENTRY_LEN) {
        let u = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        let v = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        pairs.push(f(u, v));
    }
    Ok(pairs)
}

/// Encodes a response frame from raw distances ([`UNREACHABLE`] = ∞).
#[must_use]
pub fn encode_response(distances: &[u64]) -> Vec<u8> {
    encode_response_from(distances.iter().copied())
}

/// Encodes a response frame from an iterator of raw distances, writing
/// each straight into the output buffer — no intermediate `Vec<u64>`
/// when the distances are derived on the fly (as the server does when
/// mapping backend answers to wire sentinels).
#[must_use]
pub fn encode_response_from(distances: impl ExactSizeIterator<Item = u64>) -> Vec<u8> {
    debug_assert!(u32::try_from(distances.len()).is_ok());
    let mut out = Vec::with_capacity(HEADER_LEN + distances.len() * ENTRY_LEN);
    out.extend_from_slice(&RESPONSE_MAGIC);
    out.extend_from_slice(&(distances.len() as u32).to_le_bytes());
    for d in distances {
        out.extend_from_slice(&d.to_le_bytes());
    }
    out
}

/// Decodes a response frame into raw distances.
pub fn decode_response(bytes: &[u8]) -> Result<Vec<u64>, FrameError> {
    let count = decode_header(bytes, RESPONSE_MAGIC)?;
    let mut distances = Vec::with_capacity(count as usize);
    for chunk in bytes[HEADER_LEN..].chunks_exact(ENTRY_LEN) {
        distances.push(u64::from_le_bytes([
            chunk[0], chunk[1], chunk[2], chunk[3], chunk[4], chunk[5], chunk[6], chunk[7],
        ]));
    }
    Ok(distances)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let pairs = vec![(0, 1), (7, 7), (u32::MAX, 0), (3, u32::MAX)];
        let bytes = encode_request(&pairs);
        assert_eq!(bytes.len(), HEADER_LEN + pairs.len() * ENTRY_LEN);
        assert_eq!(&bytes[..4], b"CCBQ");
        assert_eq!(decode_request(&bytes), Ok(pairs));
    }

    #[test]
    fn response_round_trip() {
        let distances = vec![0, 17, UNREACHABLE, u64::MAX - 1];
        let bytes = encode_response(&distances);
        assert_eq!(&bytes[..4], b"CCBR");
        assert_eq!(decode_response(&bytes), Ok(distances));
    }

    #[test]
    fn truncated_frames_are_rejected() {
        for len in 0..HEADER_LEN {
            let bytes = vec![0u8; len];
            assert_eq!(decode_request(&bytes), Err(FrameError::Truncated { len }));
        }
        // Header present but payload short of the declared count.
        let mut bytes = encode_request(&[(1, 2), (3, 4)]);
        bytes.truncate(bytes.len() - 1);
        assert!(matches!(
            decode_request(&bytes),
            Err(FrameError::LengthMismatch { declared: 2, .. })
        ));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode_request(&[(1, 2)]);
        bytes[0] = b'X';
        assert_eq!(decode_request(&bytes), Err(FrameError::BadMagic { expected: REQUEST_MAGIC }));
        // A response magic on the request plane is also a bad magic.
        let resp = encode_response(&[9]);
        assert_eq!(decode_request(&resp), Err(FrameError::BadMagic { expected: REQUEST_MAGIC }));
    }

    #[test]
    fn zero_pairs_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&REQUEST_MAGIC);
        bytes.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(decode_request(&bytes), Err(FrameError::EmptyBatch));
    }

    #[test]
    fn length_mismatch_both_directions() {
        // Declares 3 pairs, carries 1.
        let mut short = Vec::new();
        short.extend_from_slice(&REQUEST_MAGIC);
        short.extend_from_slice(&3u32.to_le_bytes());
        short.extend_from_slice(&[0u8; ENTRY_LEN]);
        assert!(matches!(
            decode_request(&short),
            Err(FrameError::LengthMismatch { declared: 3, actual_len: 16, .. })
        ));
        // Declares 1 pair, carries 2.
        let mut long = encode_request(&[(1, 2)]);
        long.extend_from_slice(&[0u8; ENTRY_LEN]);
        assert!(matches!(
            decode_request(&long),
            Err(FrameError::LengthMismatch { declared: 1, .. })
        ));
    }

    #[test]
    fn hostile_count_does_not_allocate() {
        // u32::MAX declared pairs in a 16-byte body: the length check fires
        // (with the implied length computed in u64) before any allocation.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&REQUEST_MAGIC);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 8]);
        assert_eq!(
            decode_request(&bytes),
            Err(FrameError::LengthMismatch {
                declared: u32::MAX,
                expected_len: 8 + u64::from(u32::MAX) * 8,
                actual_len: 16,
            })
        );
    }

    #[test]
    fn display_messages_are_stable() {
        assert_eq!(
            FrameError::Truncated { len: 3 }.to_string(),
            "frame truncated: 3 bytes, need at least 8"
        );
        assert_eq!(FrameError::EmptyBatch.to_string(), "frame declares zero pairs");
        assert!(FrameError::BadMagic { expected: REQUEST_MAGIC }.to_string().contains("CCBQ"));
    }
}
