//! Safe readiness-polling API over the [`sys`](crate::sys) shim.
//!
//! [`Poller`] owns an epoll instance plus an internal eventfd used by
//! [`Waker`] to interrupt a blocked [`Poller::wait`] from another thread.
//! Registration is by raw descriptor and caller-chosen token: the poller
//! never owns the sockets it watches, it only reports readiness. All
//! registrations are level-triggered, so a socket with buffered kernel
//! data re-fires on the next wait — parking a connection that already has
//! bytes pending is safe, it is handed straight back.

use std::io;
use std::sync::Arc;
use std::time::Duration;

/// Token value reserved for the poller's internal waker; never returned
/// from [`Poller::wait`] and rejected by [`Poller::add`].
pub const WAKER_TOKEN: u64 = u64::MAX;

/// One readiness notification from [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the descriptor was registered with.
    pub token: u64,
    /// True when the kernel flagged error/hang-up conditions alongside (or
    /// instead of) readability. The descriptor should be drained and
    /// dropped, not re-parked.
    pub closed: bool,
}

#[cfg(target_os = "linux")]
mod imp {
    use super::{Event, WAKER_TOKEN};
    use crate::sys;
    use std::io;
    use std::sync::Arc;
    use std::time::Duration;

    /// Shared eventfd; closed when the last of poller/wakers drops.
    pub(super) struct WakeFd(pub(super) i32);

    impl Drop for WakeFd {
        fn drop(&mut self) {
            sys::close_fd(self.0);
        }
    }

    pub(super) struct PollerImp {
        epfd: i32,
        pub(super) wake: Arc<WakeFd>,
    }

    impl Drop for PollerImp {
        fn drop(&mut self) {
            sys::close_fd(self.epfd);
        }
    }

    impl PollerImp {
        pub(super) fn new() -> io::Result<PollerImp> {
            let epfd = sys::epoll_create()?;
            let wake_fd = match sys::eventfd_create() {
                Ok(fd) => fd,
                Err(e) => {
                    sys::close_fd(epfd);
                    return Err(e);
                }
            };
            let wake = Arc::new(WakeFd(wake_fd));
            if let Err(e) = sys::epoll_add(epfd, wake_fd, sys::EPOLLIN, WAKER_TOKEN) {
                sys::close_fd(epfd);
                return Err(e);
            }
            Ok(PollerImp { epfd, wake })
        }

        pub(super) fn add(&self, fd: i32, token: u64) -> io::Result<()> {
            sys::epoll_add(self.epfd, fd, sys::EPOLLIN | sys::EPOLLRDHUP, token)
        }

        pub(super) fn delete(&self, fd: i32) -> io::Result<()> {
            sys::epoll_del(self.epfd, fd)
        }

        pub(super) fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            const MAX_EVENTS: usize = 256;
            let mut buf = [sys::EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
            let timeout_ms = match timeout {
                // Round up so a 100 µs deadline doesn't busy-spin at 0 ms.
                Some(d) => i32::try_from(d.as_millis().saturating_add(1)).unwrap_or(i32::MAX),
                None => -1,
            };
            let n = match sys::epoll_wait_into(self.epfd, &mut buf, timeout_ms) {
                Ok(n) => n,
                // Signal delivery (e.g. SIGHUP reload) interrupts the wait;
                // report an empty batch and let the caller loop.
                Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                Err(e) => return Err(e),
            };
            for ev in &buf[..n] {
                // Copy out of the (packed on x86-64) struct before use.
                let token = ev.data;
                let bits = ev.events;
                if token == WAKER_TOKEN {
                    sys::eventfd_drain(self.wake.0);
                    continue;
                }
                events.push(Event {
                    token,
                    closed: bits & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
                });
            }
            Ok(())
        }
    }

    pub(super) fn wake(fd: &WakeFd) {
        sys::eventfd_signal(fd.0);
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::Event;
    use std::io;
    use std::sync::Arc;
    use std::time::Duration;

    /// Stub so `Waker` stays a real type on every platform.
    pub(super) struct WakeFd(pub(super) ());

    pub(super) struct PollerImp {
        pub(super) wake: Arc<WakeFd>,
    }

    impl PollerImp {
        pub(super) fn new() -> io::Result<PollerImp> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "epoll poller is only available on Linux",
            ))
        }

        pub(super) fn add(&self, _fd: i32, _token: u64) -> io::Result<()> {
            Err(io::ErrorKind::Unsupported.into())
        }

        pub(super) fn delete(&self, _fd: i32) -> io::Result<()> {
            Err(io::ErrorKind::Unsupported.into())
        }

        pub(super) fn wait(
            &self,
            _events: &mut Vec<Event>,
            _timeout: Option<Duration>,
        ) -> io::Result<()> {
            Err(io::ErrorKind::Unsupported.into())
        }
    }

    pub(super) fn wake(_fd: &WakeFd) {}
}

/// Level-triggered readiness poller (epoll on Linux).
///
/// Construction fails with [`io::ErrorKind::Unsupported`] on other
/// platforms; callers are expected to fall back to a portable strategy.
/// The poller itself is used from a single reactor thread; [`Waker`]s are
/// the only cross-thread handle.
pub struct Poller {
    imp: imp::PollerImp,
}

/// Cross-thread handle that interrupts a blocked [`Poller::wait`].
///
/// Cheap to clone; keeps the underlying eventfd alive independently of the
/// poller, so waking after the poller dropped is a harmless no-op on a
/// still-open descriptor (never a write to a recycled fd).
#[derive(Clone)]
pub struct Waker {
    wake: Arc<imp::WakeFd>,
}

impl Waker {
    /// Makes the next (or current) [`Poller::wait`] return promptly.
    pub fn wake(&self) {
        imp::wake(&self.wake);
    }
}

impl Poller {
    /// Creates a poller, or fails with `Unsupported` off-Linux.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller { imp: imp::PollerImp::new()? })
    }

    /// True when this platform has a working poller implementation.
    #[must_use]
    pub fn supported() -> bool {
        cfg!(target_os = "linux")
    }

    /// Returns a handle that can interrupt [`Poller::wait`] from any thread.
    #[must_use]
    pub fn waker(&self) -> Waker {
        Waker { wake: Arc::clone(&self.imp.wake) }
    }

    /// Watches `fd` (level-triggered, read interest + peer hang-up) under
    /// `token`. The caller keeps ownership of the descriptor and must
    /// [`delete`](Poller::delete) it before closing it.
    pub fn add(&self, fd: i32, token: u64) -> io::Result<()> {
        if token == WAKER_TOKEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "token u64::MAX is reserved for the poller's waker",
            ));
        }
        self.imp.add(fd, token)
    }

    /// Stops watching `fd`.
    pub fn delete(&self, fd: i32) -> io::Result<()> {
        self.imp.delete(fd)
    }

    /// Blocks until at least one descriptor is ready, the timeout elapses,
    /// or a [`Waker`] fires; appends readiness events to `events` (waker
    /// wake-ups surface as an empty batch, as do interrupts). `None` blocks
    /// indefinitely.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        self.imp.wait(events, timeout)
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Instant;

    // This file is under the `no_panic` lint, and the lint's test mask only
    // recognizes plain `#[cfg(test)]` (not this `cfg(all(...))` gate), so
    // these tests propagate errors instead of unwrapping.
    type TestResult = Result<(), io::Error>;

    #[test]
    fn listener_readiness_and_timeout() -> TestResult {
        let poller = Poller::new()?;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        poller.add(listener.as_raw_fd(), 7)?;

        // Nothing pending: a short wait times out with no events.
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_millis(10)))?;
        assert!(events.is_empty());

        // A pending connection makes the listener readable.
        let _client = TcpStream::connect(listener.local_addr()?)?;
        poller.wait(&mut events, Some(Duration::from_secs(5)))?;
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(!events[0].closed);

        poller.delete(listener.as_raw_fd())?;
        Ok(())
    }

    #[test]
    fn stream_data_and_hangup() -> TestResult {
        let poller = Poller::new()?;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let mut client = TcpStream::connect(listener.local_addr()?)?;
        let (server_side, _) = listener.accept()?;
        poller.add(server_side.as_raw_fd(), 42)?;

        client.write_all(b"x")?;
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_secs(5)))?;
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 42);

        // Level-triggered: undrained data re-fires on the next wait.
        events.clear();
        poller.wait(&mut events, Some(Duration::from_secs(5)))?;
        assert_eq!(events.len(), 1, "level-triggered events must re-fire");

        drop(client);
        events.clear();
        poller.wait(&mut events, Some(Duration::from_secs(5)))?;
        assert_eq!(events.len(), 1);
        assert!(events[0].closed, "peer hang-up must set `closed`");
        poller.delete(server_side.as_raw_fd())?;
        Ok(())
    }

    #[test]
    fn waker_interrupts_wait() -> TestResult {
        let poller = Poller::new()?;
        let waker = poller.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.wake();
        });
        let start = Instant::now();
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_secs(30)))?;
        assert!(start.elapsed() < Duration::from_secs(10), "waker must interrupt long waits");
        assert!(events.is_empty(), "waker wake-ups carry no events");
        assert!(handle.join().is_ok());
        Ok(())
    }

    #[test]
    fn waker_token_is_rejected() -> TestResult {
        let poller = Poller::new()?;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        assert!(poller.add(listener.as_raw_fd(), WAKER_TOKEN).is_err());
        Ok(())
    }

    #[test]
    fn wake_after_poller_drop_is_safe() -> TestResult {
        let poller = Poller::new()?;
        let waker = poller.waker();
        drop(poller);
        waker.wake(); // must not touch a recycled descriptor
        Ok(())
    }
}
