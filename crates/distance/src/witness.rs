//! Witnessed distance products — §3.1, "Recovering paths".
//!
//! The paper notes that because the multiplication algorithms compute every
//! elementary product explicitly, they can report a **witness** for each
//! output entry: a node `w` with `P[u,v] = S[u,w] + T[w,v]`. Witnesses turn
//! distance products into routing information: the witness of an iterated
//! square is a path *midpoint*, from which full shortest paths are
//! reconstructed recursively (see `cc_core::paths`).
//!
//! Implementation: the right operand's entries are tagged with their row
//! index and the product runs over the witness-tracking semiring
//! [`WitnessedMinPlus`]; the tag that survives the min is a valid witness,
//! with ties broken toward the smallest node id (deterministic).

use cc_clique::Clique;
use cc_matrix::{Dist, SparseRow, WitnessedDist, WitnessedMinPlus};

use crate::DistanceError;

/// Tags every entry of a column slice with its row index, producing the
/// right operand of a witnessed product.
fn tag_cols(cols: &[SparseRow<Dist>]) -> Vec<SparseRow<WitnessedDist>> {
    cols.iter()
        .map(|col| {
            SparseRow::from_sorted(
                col.iter()
                    .map(|(r, d)| {
                        let w = d.value().expect("sparse rows store finite values");
                        (r, WitnessedDist { dist: w, via: r })
                    })
                    .collect(),
            )
        })
        .collect()
}

fn untagged_rows(rows: &[SparseRow<Dist>]) -> Vec<SparseRow<WitnessedDist>> {
    rows.iter()
        .map(|row| {
            SparseRow::from_sorted(
                row.iter()
                    .map(|(c, d)| {
                        let w = d.value().expect("sparse rows store finite values");
                        (c, WitnessedDist { dist: w, via: u32::MAX })
                    })
                    .collect(),
            )
        })
        .collect()
}

/// The distance product `P = S ⋆ T` with witnesses: every output entry
/// carries a node `w` such that `P[u,v] = S[u,w] + T[w,v]` (ties toward the
/// smallest `w`). Same layout and cost as
/// [`cc_matmul::sparse_multiply`] (Theorem 8).
///
/// # Errors
///
/// As [`cc_matmul::sparse_multiply`], wrapped in [`DistanceError::Matmul`].
///
/// # Example
///
/// ```
/// use cc_clique::Clique;
/// use cc_distance::product_with_witnesses;
/// use cc_matrix::{Dist, MinPlus, SparseMatrix};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Path 0-1-2: the 2-hop distance 0->2 is witnessed by node 1.
/// let mut w = SparseMatrix::<Dist>::identity::<MinPlus>(3);
/// w.set_in::<MinPlus>(0, 1, Dist::fin(5));
/// w.set_in::<MinPlus>(1, 0, Dist::fin(5));
/// w.set_in::<MinPlus>(1, 2, Dist::fin(7));
/// w.set_in::<MinPlus>(2, 1, Dist::fin(7));
/// let mut clique = Clique::new(3);
/// let t_cols = w.transpose();
/// let p = product_with_witnesses(&mut clique, w.rows(), t_cols.rows(), 3)?;
/// let entry = p[0].get(2).unwrap();
/// assert_eq!(entry.dist, 12);
/// assert_eq!(entry.witness(), Some(1));
/// # Ok(())
/// # }
/// ```
pub fn product_with_witnesses(
    clique: &mut Clique,
    s_rows: &[SparseRow<Dist>],
    t_cols: &[SparseRow<Dist>],
    rho_hat: usize,
) -> Result<Vec<SparseRow<WitnessedDist>>, DistanceError> {
    let s = untagged_rows(s_rows);
    let t = tag_cols(t_cols);
    let rows = cc_matmul::sparse_multiply::<WitnessedMinPlus>(clique, &s, &t, rho_hat)?;
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_matrix::{MinPlus, SparseMatrix};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(n: usize, nnz: usize, seed: u64) -> SparseMatrix<Dist> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = SparseMatrix::zeros(n);
        for _ in 0..nnz {
            m.set_in::<MinPlus>(
                rng.gen_range(0..n),
                rng.gen_range(0..n),
                Dist::fin(rng.gen_range(1..100)),
            );
        }
        m
    }

    #[test]
    fn witnesses_are_valid_and_distances_match_reference() {
        let n = 16;
        let s = random_matrix(n, 60, 1);
        let t = random_matrix(n, 60, 2);
        let t_cols = t.transpose();
        let expected = s.multiply::<MinPlus>(&t);
        let mut clique = Clique::new(n);
        let got = product_with_witnesses(&mut clique, s.rows(), t_cols.rows(), expected.density())
            .unwrap();
        for u in 0..n {
            for (v, wd) in got[u].iter() {
                // Distance matches the plain product.
                assert_eq!(Some(&wd.to_dist()), expected.get(u, v as usize));
                // The witness certifies the value.
                let w = wd.witness().expect("products of tagged operands have witnesses");
                let s_val = s.get(u, w).expect("witness edge in S");
                let t_val = t.get(w, v as usize).expect("witness edge in T");
                assert_eq!(wd.dist, s_val.value().unwrap() + t_val.value().unwrap());
            }
            // No extra entries either.
            assert_eq!(got[u].nnz(), expected.row(u).nnz());
        }
    }

    #[test]
    fn ties_pick_smallest_witness() {
        // Two equal-cost midpoints 1 and 2 between 0 and 3.
        let n = 4;
        let mut w = SparseMatrix::<Dist>::zeros(n);
        for mid in [1usize, 2] {
            w.set_in::<MinPlus>(0, mid, Dist::fin(5));
            w.set_in::<MinPlus>(mid, 3, Dist::fin(5));
        }
        let t_cols = w.transpose();
        let mut clique = Clique::new(n);
        let got = product_with_witnesses(&mut clique, w.rows(), t_cols.rows(), n).unwrap();
        assert_eq!(got[0].get(3).unwrap().witness(), Some(1));
    }
}
