use std::error::Error;
use std::fmt;

use cc_clique::CliqueError;
use cc_matmul::MatmulError;

/// Errors raised by the distance tools.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DistanceError {
    /// A matrix-multiplication subroutine failed.
    Matmul(MatmulError),
    /// A simulator primitive failed directly.
    Clique(CliqueError),
    /// A tool was invoked with parameters outside its domain.
    InvalidParameter {
        /// Description of the violated constraint.
        what: String,
    },
}

impl fmt::Display for DistanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistanceError::Matmul(e) => write!(f, "matrix multiplication failed: {e}"),
            DistanceError::Clique(e) => write!(f, "clique primitive failed: {e}"),
            DistanceError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl Error for DistanceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DistanceError::Matmul(e) => Some(e),
            DistanceError::Clique(e) => Some(e),
            DistanceError::InvalidParameter { .. } => None,
        }
    }
}

impl From<MatmulError> for DistanceError {
    fn from(e: MatmulError) -> Self {
        DistanceError::Matmul(e)
    }
}

impl From<CliqueError> for DistanceError {
    fn from(e: CliqueError) -> Self {
        DistanceError::Clique(e)
    }
}

pub(crate) fn invalid(what: impl Into<String>) -> DistanceError {
    DistanceError::InvalidParameter { what: what.into() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_chains() {
        let e = DistanceError::from(MatmulError::DensityHintTooSmall { hint: 2 });
        assert!(e.to_string().contains("multiplication"));
        assert!(Error::source(&e).is_some());
        assert!(invalid("k must be positive").to_string().contains('k'));
    }
}
