//! # `cc-distance`: the paper's distance tools (§3) and hitting sets
//!
//! Built on the sparse/filtered matrix multiplication of [`cc_matmul`],
//! this crate implements the output-sensitive distance primitives that all
//! shortest-path algorithms of *Fast Approximate Shortest Paths in the
//! Congested Clique* (PODC 2019) compose:
//!
//! * [`k_nearest`] — **Theorem 18**: every node learns its `k` nearest
//!   nodes with exact distances, in `O((k/n^{2/3} + log n)·log k)` rounds,
//!   by iterated ρ-filtered squaring of the augmented weight matrix;
//! * [`source_detection_k`] / [`source_detection_all`] — **Theorem 19**:
//!   the `(S, d, k)`-source detection problem (distances to the nearest
//!   sources within `d` hops), the hop-bounded engine behind hopset-based
//!   approximation;
//! * [`distance_through_sets`] — **Theorem 20**: combine per-node distance
//!   sets `{δ(v, w)}_{w ∈ W_v}` into `min_w δ(v,w) + δ(w,u)` estimates via
//!   one sparse product;
//! * [`hitting_set`] — **Lemma 4**: deterministic-given-seed hitting sets of
//!   size `O(n log n / k)` with guaranteed coverage (pseudorandom sampling
//!   plus a one-round repair step; the round cost `O((log log n)³)` of the
//!   cited construction \[PY18\] is charged explicitly — see DESIGN.md).
//!
//! All tools work on directed or undirected non-negative integer-weighted
//! graphs; this workspace exercises them on the undirected graphs of
//! [`cc_graph`].
//!
//! Unsafe code is forbidden (`#![forbid(unsafe_code)]`), as across the
//! whole workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Distributed algorithms index many parallel per-node vectors by NodeId;
// iterator zips would obscure which node each access belongs to.
#![allow(clippy::needless_range_loop)]

mod error;
mod hitting;
mod knearest;
mod source_detection;
mod through_sets;
mod witness;

pub mod product;

pub use error::DistanceError;
pub use hitting::{hitting_set, hitting_set_local, HittingSet};
pub use knearest::{k_nearest, k_nearest_matrix};
pub use source_detection::{
    source_detection_all, source_detection_all_matrix, source_detection_k,
    source_detection_k_matrix,
};
pub use through_sets::distance_through_sets;
pub use witness::product_with_witnesses;
