//! Distance-product helpers (§3.1): the augmented weight matrix and
//! conversions between sparse augmented rows and plain distance vectors.

use cc_matrix::{AugDist, Dist, SparseRow};

/// Extracts plain distances from a row of augmented `(weight, hops)` values.
pub fn row_to_distances(row: &SparseRow<AugDist>) -> Vec<(usize, Dist)> {
    row.iter().map(|(c, v)| (c as usize, v.to_dist())).collect()
}

/// The distance to `target` recorded in an augmented row, if any.
pub fn row_distance(row: &SparseRow<AugDist>, target: usize) -> Option<Dist> {
    row.get(target as u32).map(|v| v.to_dist())
}

/// Merges a new estimate row into `best` (elementwise augmented minimum) —
/// the "each node maintains an estimate and takes the minimum" update the
/// APSP algorithms of §6 perform after every phase.
pub fn merge_estimates(best: &mut SparseRow<AugDist>, new: &SparseRow<AugDist>) {
    use cc_matrix::AugMinPlus;
    for (c, v) in new.iter() {
        best.accumulate::<AugMinPlus>(c, *v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_matrix::AugMinPlus;

    #[test]
    fn row_conversions() {
        let row = SparseRow::from_entries::<AugMinPlus>(vec![
            (1, AugDist::fin(5, 2)),
            (3, AugDist::fin(0, 0)),
        ]);
        assert_eq!(row_to_distances(&row), vec![(1, Dist::fin(5)), (3, Dist::ZERO)]);
        assert_eq!(row_distance(&row, 1), Some(Dist::fin(5)));
        assert_eq!(row_distance(&row, 2), None);
    }

    #[test]
    fn merge_takes_minimum() {
        let mut best = SparseRow::from_entries::<AugMinPlus>(vec![(1, AugDist::fin(5, 2))]);
        let new = SparseRow::from_entries::<AugMinPlus>(vec![
            (1, AugDist::fin(3, 4)),
            (2, AugDist::fin(7, 1)),
        ]);
        merge_estimates(&mut best, &new);
        assert_eq!(best.get(1), Some(&AugDist::fin(3, 4)));
        assert_eq!(best.get(2), Some(&AugDist::fin(7, 1)));
    }
}
