//! The distance-through-sets problem — **Theorem 20**.
//!
//! Each node `v` holds a set `W_v` with distance estimates `δ(v, w)`;
//! the tool computes, for every pair `(v, u)`, the best estimate through a
//! common set member: `min_{w ∈ W_v ∩ W_u} δ(v,w) + δ(w,u)`. One sparse
//! product over the min-plus semiring: `O(ρ^{2/3}/n^{1/3} + 1)` rounds with
//! `ρ = Σ|W_v|/n`.

use cc_clique::Clique;
use cc_matrix::{Dist, MinPlus, SparseRow};

use crate::error::invalid;
use crate::DistanceError;

/// **Theorem 20**: all-pairs estimates through shared set members.
///
/// `sets[v]` lists `(w, δ(v, w))` for `w ∈ W_v` (for undirected estimates,
/// `δ(v,w) = δ(w,v)`). Returns per node `v` a sparse row over `u` with
/// `min_{w ∈ W_v ∩ W_u} δ(v,w) + δ(w,u)` (absent = no common member).
///
/// # Errors
///
/// * [`DistanceError::InvalidParameter`] if `sets` doesn't match the clique
///   size or references out-of-range members;
/// * [`DistanceError::Matmul`] if the product subroutine fails.
///
/// # Example
///
/// ```
/// use cc_clique::Clique;
/// use cc_distance::distance_through_sets;
/// use cc_matrix::Dist;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Nodes 0 and 2 both know distances to node 1.
/// let sets = vec![
///     vec![(1, Dist::fin(4))],
///     vec![(1, Dist::ZERO)],
///     vec![(1, Dist::fin(3))],
///     vec![],
/// ];
/// let mut clique = Clique::new(4);
/// let est = distance_through_sets(&mut clique, &sets)?;
/// assert_eq!(est[0].get(2), Some(&Dist::fin(7))); // 4 + 3 through node 1
/// assert_eq!(est[0].get(3), None);
/// # Ok(())
/// # }
/// ```
pub fn distance_through_sets(
    clique: &mut Clique,
    sets: &[Vec<(usize, Dist)>],
) -> Result<Vec<SparseRow<Dist>>, DistanceError> {
    let n = clique.n();
    if sets.len() != n {
        return Err(invalid(format!("sets has length {} but clique has {n}", sets.len())));
    }
    for (v, set) in sets.iter().enumerate() {
        if let Some(&(w, _)) = set.iter().find(|&&(w, _)| w >= n) {
            return Err(invalid(format!("node {v} references member {w} outside 0..{n}")));
        }
    }
    clique.with_phase("through_sets", |clique| {
        // W1[v, w] = δ(v, w); W2 = W1ᵀ, so column u of W2 is exactly row u
        // of W1 — the input layout needs no transpose exchange.
        let rows: Vec<SparseRow<Dist>> = sets
            .iter()
            .map(|set| {
                SparseRow::from_entries::<MinPlus>(
                    set.iter().map(|&(w, d)| (w as u32, d)).collect(),
                )
            })
            .collect();
        let out = cc_matmul::sparse_multiply::<MinPlus>(clique, &rows, &rows, n)?;
        Ok(out)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn brute_force(sets: &[Vec<(usize, Dist)>]) -> Vec<Vec<Option<Dist>>> {
        let n = sets.len();
        let mut out = vec![vec![None; n]; n];
        for v in 0..n {
            for u in 0..n {
                let mut best: Option<Dist> = None;
                for &(w, dv) in &sets[v] {
                    for &(w2, du) in &sets[u] {
                        if w == w2 {
                            let cand = dv.checked_add(du);
                            best = Some(match best {
                                Some(b) => b.min(cand),
                                None => cand,
                            });
                        }
                    }
                }
                out[v][u] = best.filter(|d| d.is_finite());
            }
        }
        out
    }

    #[test]
    fn matches_brute_force_on_random_sets() {
        let n = 16;
        let mut rng = StdRng::seed_from_u64(11);
        let sets: Vec<Vec<(usize, Dist)>> = (0..n)
            .map(|_| {
                let size = rng.gen_range(0..5);
                (0..size).map(|_| (rng.gen_range(0..n), Dist::fin(rng.gen_range(0..100)))).collect()
            })
            .collect();
        let mut clique = Clique::new(n);
        let got = distance_through_sets(&mut clique, &sets).unwrap();
        let expected = brute_force(&sets);
        for v in 0..n {
            for u in 0..n {
                assert_eq!(got[v].get(u as u32).copied(), expected[v][u], "pair ({v},{u})");
            }
        }
    }

    #[test]
    fn empty_sets_produce_empty_rows() {
        let mut clique = Clique::new(4);
        let got = distance_through_sets(&mut clique, &vec![vec![]; 4]).unwrap();
        assert!(got.iter().all(|r| r.is_empty()));
    }

    #[test]
    fn rejects_malformed_sets() {
        let mut clique = Clique::new(4);
        assert!(distance_through_sets(&mut clique, &[]).is_err());
        let sets = vec![vec![(9, Dist::ZERO)], vec![], vec![], vec![]];
        assert!(distance_through_sets(&mut clique, &sets).is_err());
    }

    #[test]
    fn sqrt_n_sets_cost_constant_rounds() {
        // Theorem 20 with rho = sqrt(n): O(rho^{2/3}/n^{1/3} + 1) = O(1).
        let n = 64;
        let mut rng = StdRng::seed_from_u64(12);
        let sets: Vec<Vec<(usize, Dist)>> = (0..n)
            .map(|_| {
                (0..8).map(|_| (rng.gen_range(0..n), Dist::fin(rng.gen_range(1..50)))).collect()
            })
            .collect();
        let mut clique = Clique::new(n);
        distance_through_sets(&mut clique, &sets).unwrap();
        assert!(clique.rounds() < 40, "got {}", clique.rounds());
    }
}
