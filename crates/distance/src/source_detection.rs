//! The `(S, d, k)`-source detection problem — **Theorem 19**.
//!
//! Given sources `S ⊆ V`, every node computes its distances to sources
//! using paths of at most `d` hops — either the `k` nearest such sources
//! (the filtered variant, `O((m^{1/3}k^{2/3}/n + log n)·d)` rounds) or all
//! of them (the unfiltered variant, `O((m^{1/3}|S|^{2/3}/n + 1)·d)`
//! rounds). Both iterate `W_{i+1} = W ⋆ W_i` with the augmented weight
//! matrix, exploiting that the *output* stays `|S|`-sparse per row; the
//! dependence on `d` is linear precisely because each multiplication must
//! stay sparse (§1.3).

use cc_clique::Clique;
use cc_graph::Graph;
use cc_matrix::{AugDist, AugMinPlus, SparseMatrix, SparseRow};

use crate::error::invalid;
use crate::DistanceError;

fn validate(
    clique: &Clique,
    matrix_n: usize,
    sources: &[usize],
    d: usize,
) -> Result<Vec<bool>, DistanceError> {
    let n = clique.n();
    if matrix_n != n {
        return Err(invalid(format!("input has {matrix_n} nodes but clique has {n}")));
    }
    if sources.is_empty() {
        return Err(invalid("source detection needs at least one source"));
    }
    if d == 0 {
        return Err(invalid("source detection needs hop bound d >= 1"));
    }
    let mut in_s = vec![false; n];
    for &s in sources {
        if s >= n {
            return Err(invalid(format!("source {s} outside 0..{n}")));
        }
        in_s[s] = true;
    }
    Ok(in_s)
}

/// Restriction of the augmented weight matrix to source columns: the
/// matrix `U_1` (or `W_1`) of Theorem 19.
fn restrict_to_sources(w: &SparseMatrix<AugDist>, in_s: &[bool]) -> SparseMatrix<AugDist> {
    let rows = w
        .rows()
        .iter()
        .map(|row| {
            SparseRow::from_entries::<AugMinPlus>(
                row.iter().filter(|(c, _)| in_s[*c as usize]).map(|(c, v)| (c, *v)).collect(),
            )
        })
        .collect();
    SparseMatrix::from_rows(rows)
}

/// **Theorem 19 (filtered variant)**: every node learns its `k` nearest
/// sources within `d` hops, with the hop-bounded distances, in
/// `O((m^{1/3}k^{2/3}/n + log n)·d)` rounds.
///
/// Output: per node, a sparse augmented row whose columns are source ids.
///
/// # Errors
///
/// * [`DistanceError::InvalidParameter`] for empty/out-of-range sources,
///   `d == 0`, `k == 0`, or a graph/clique size mismatch;
/// * [`DistanceError::Matmul`] if a multiplication subroutine fails.
pub fn source_detection_k(
    clique: &mut Clique,
    graph: &Graph,
    sources: &[usize],
    d: usize,
    k: usize,
) -> Result<Vec<SparseRow<AugDist>>, DistanceError> {
    source_detection_k_matrix(clique, &graph.augmented_weight_matrix(), sources, d, k)
}

/// [`source_detection_k`] on an explicit augmented weight matrix — the
/// directed form (distances along outgoing paths).
///
/// # Errors
///
/// Same as [`source_detection_k`].
pub fn source_detection_k_matrix(
    clique: &mut Clique,
    w: &SparseMatrix<AugDist>,
    sources: &[usize],
    d: usize,
    k: usize,
) -> Result<Vec<SparseRow<AugDist>>, DistanceError> {
    let in_s = validate(clique, w.n(), sources, d)?;
    if k == 0 {
        return Err(invalid("source detection needs k >= 1"));
    }
    let k = k.min(clique.n());
    clique.with_phase("source_detection_k", |clique| {
        // W_1: the k lightest edges towards S per node.
        let mut x = restrict_to_sources(w, &in_s).filtered::<AugMinPlus>(k);
        for _ in 1..d {
            let x_cols = cc_matmul::layout::transpose_exchange::<AugMinPlus>(clique, x.rows())?;
            let rows = cc_matmul::filtered_multiply::<AugMinPlus>(clique, w.rows(), &x_cols, k)?;
            x = SparseMatrix::from_rows(rows);
        }
        Ok(x.rows().to_vec())
    })
}

/// **Theorem 19 (unfiltered variant)**: every node learns its hop-`d`
/// distances to **all** sources, in `O((m^{1/3}|S|^{2/3}/n + 1)·d)` rounds.
///
/// Output: per node, a sparse augmented row whose columns are source ids
/// (absent = not reachable within `d` hops).
///
/// # Errors
///
/// Same as [`source_detection_k`], minus the `k` condition.
///
/// # Example
///
/// ```
/// use cc_clique::Clique;
/// use cc_distance::source_detection_all;
/// use cc_graph::generators;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::path(8)?;
/// let mut clique = Clique::new(8);
/// let rows = source_detection_all(&mut clique, &g, &[0], 3)?;
/// assert_eq!(rows[3].get(0).map(|a| a.dist), Some(3)); // 3 hops away
/// assert!(rows[4].get(0).is_none()); // 4 hops: outside the budget
/// # Ok(())
/// # }
/// ```
pub fn source_detection_all(
    clique: &mut Clique,
    graph: &Graph,
    sources: &[usize],
    d: usize,
) -> Result<Vec<SparseRow<AugDist>>, DistanceError> {
    source_detection_all_matrix(clique, &graph.augmented_weight_matrix(), sources, d)
}

/// [`source_detection_all`] on an explicit augmented weight matrix — the
/// directed form (distances along outgoing paths).
///
/// # Errors
///
/// Same as [`source_detection_all`].
pub fn source_detection_all_matrix(
    clique: &mut Clique,
    w: &SparseMatrix<AugDist>,
    sources: &[usize],
    d: usize,
) -> Result<Vec<SparseRow<AugDist>>, DistanceError> {
    let in_s = validate(clique, w.n(), sources, d)?;
    let rho_hat = sources.len().max(1);
    clique.with_phase("source_detection_all", |clique| {
        let mut u = restrict_to_sources(w, &in_s);
        for _ in 1..d {
            let u_cols = cc_matmul::layout::transpose_exchange::<AugMinPlus>(clique, u.rows())?;
            let rows =
                cc_matmul::sparse_multiply::<AugMinPlus>(clique, w.rows(), &u_cols, rho_hat)?;
            u = SparseMatrix::from_rows(rows);
        }
        Ok(u.rows().to_vec())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::{generators, reference};

    fn check_all_against_reference(g: &Graph, sources: &[usize], d: usize) {
        let mut clique = Clique::new(g.n());
        let got = source_detection_all(&mut clique, g, sources, d).unwrap();
        for &s in sources {
            let expected = reference::hop_bounded(g, s, d);
            for v in 0..g.n() {
                let got_d = got[v].get(s as u32).map(|a| a.dist);
                assert_eq!(got_d, expected[v], "source {s}, node {v}, d={d} on {} nodes", g.n());
            }
        }
    }

    #[test]
    fn all_variant_matches_hop_bounded_reference() {
        let g = generators::gnp_weighted(20, 0.15, 20, 5).unwrap();
        check_all_against_reference(&g, &[0, 3, 7], 1);
        check_all_against_reference(&g, &[0, 3, 7], 2);
        check_all_against_reference(&g, &[0, 3, 7], 4);
    }

    #[test]
    fn all_variant_on_path_respects_hop_budget() {
        let g = generators::path(10).unwrap();
        check_all_against_reference(&g, &[0, 9], 3);
        check_all_against_reference(&g, &[5], 9);
    }

    #[test]
    fn k_variant_selects_k_nearest_sources() {
        let g = generators::gnp_weighted(20, 0.2, 10, 6).unwrap();
        let sources = vec![1, 4, 9, 13, 17];
        let (d, k) = (4, 2);
        let mut clique = Clique::new(20);
        let got = source_detection_k(&mut clique, &g, &sources, d, k).unwrap();

        // Sequential reference: full d-th augmented power, restricted to
        // source columns, filtered to the k smallest per row.
        let w = g.augmented_weight_matrix();
        let mut power = w.clone();
        for _ in 1..d {
            power = w.multiply::<AugMinPlus>(&power);
        }
        let mut in_s = vec![false; 20];
        for &s in &sources {
            in_s[s] = true;
        }
        let expected = restrict_to_sources(&power, &in_s).filtered::<AugMinPlus>(k);
        for v in 0..20 {
            assert_eq!(got[v], *expected.row(v), "node {v}");
        }
    }

    #[test]
    fn k_variant_with_source_at_self() {
        let g = generators::star(8).unwrap();
        let mut clique = Clique::new(8);
        let got = source_detection_k(&mut clique, &g, &[2, 5], 2, 2).unwrap();
        // Node 2 is its own nearest source at distance (0,0).
        assert_eq!(got[2].get(2), Some(&cc_matrix::AugDist::ZERO));
        // Leaf 3 reaches both sources via the centre in 2 hops.
        assert_eq!(got[3].get(2).map(|a| a.dist), Some(2));
        assert_eq!(got[3].get(5).map(|a| a.dist), Some(2));
    }

    #[test]
    fn rejects_bad_parameters() {
        let g = generators::path(6).unwrap();
        let mut clique = Clique::new(6);
        assert!(source_detection_all(&mut clique, &g, &[], 2).is_err());
        assert!(source_detection_all(&mut clique, &g, &[9], 2).is_err());
        assert!(source_detection_all(&mut clique, &g, &[1], 0).is_err());
        assert!(source_detection_k(&mut clique, &g, &[1], 2, 0).is_err());
    }

    #[test]
    fn round_cost_scales_linearly_in_d() {
        let g = generators::gnp(32, 0.2, 8).unwrap();
        let mut c2 = Clique::new(32);
        source_detection_all(&mut c2, &g, &[0, 1, 2, 3], 2).unwrap();
        let mut c8 = Clique::new(32);
        source_detection_all(&mut c8, &g, &[0, 1, 2, 3], 8).unwrap();
        let (r2, r8) = (c2.rounds(), c8.rounds());
        // 7 multiplications vs 1: expect roughly linear growth in d.
        assert!(r8 > 3 * r2 && r8 < 14 * r2.max(1), "r2={r2}, r8={r8}");
    }
}
