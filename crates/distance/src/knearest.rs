//! The `k`-nearest problem — **Theorem 18**.
//!
//! Every node `v` computes the set `N_k(v)` of the `k` nodes nearest to it
//! (itself included), with exact distances and minimal hop counts, ties
//! broken by the augmented order and then by node id.
//!
//! Algorithm: filter the augmented weight matrix to the `k` lightest entries
//! per row, then square with ρ-filtered multiplication `⌈log₂ k⌉` times —
//! `W̄, W̄², W̄⁴, …` Lemma 17's hop consistency guarantees the `k` smallest
//! entries of each filtered power are exact, and nodes in `N_k(v)` are at
//! most `k` hops away, so `2^{⌈log₂ k⌉} ≥ k` hops suffice.

use cc_clique::Clique;
use cc_graph::Graph;
use cc_matrix::{AugMinPlus, SparseRow};

use crate::error::invalid;
use crate::DistanceError;

/// **Theorem 18**: the `k` nearest nodes of every node, with exact
/// `(distance, hops)` values, in `O((k/n^{2/3} + log n)·log k)` rounds.
///
/// Returns one sparse augmented row per node: the entries are `N_k(v)` (at
/// most `k`, fewer if `v`'s component is smaller), including `v` itself at
/// `(0, 0)`.
///
/// # Errors
///
/// * [`DistanceError::InvalidParameter`] if `k == 0` or the graph size does
///   not match the clique;
/// * [`DistanceError::Matmul`] if a multiplication subroutine fails.
///
/// # Example
///
/// ```
/// use cc_clique::Clique;
/// use cc_distance::k_nearest;
/// use cc_graph::generators;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::path(8)?;
/// let mut clique = Clique::new(8);
/// let near = k_nearest(&mut clique, &g, 3)?;
/// // Node 0's 3 nearest on a path: itself, 1 and 2.
/// let ids: Vec<u32> = near[0].iter().map(|(c, _)| c).collect();
/// assert_eq!(ids, vec![0, 1, 2]);
/// # Ok(())
/// # }
/// ```
pub fn k_nearest(
    clique: &mut Clique,
    graph: &Graph,
    k: usize,
) -> Result<Vec<SparseRow<cc_matrix::AugDist>>, DistanceError> {
    if graph.n() != clique.n() {
        return Err(invalid(format!(
            "graph has {} nodes but clique has {}",
            graph.n(),
            clique.n()
        )));
    }
    k_nearest_matrix(clique, &graph.augmented_weight_matrix(), k)
}

/// [`k_nearest`] on an explicit augmented weight matrix — the directed
/// form of Theorem 18 (the paper's distance tools work on directed graphs;
/// §3). Row `v` of the result lists the `k` nodes nearest to `v` along
/// *outgoing* paths.
///
/// # Errors
///
/// Same conditions as [`k_nearest`].
///
/// # Example
///
/// ```
/// use cc_clique::Clique;
/// use cc_distance::k_nearest_matrix;
/// use cc_graph::DiGraph;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // One-way path 0 -> 1 -> 2 -> 3.
/// let g = DiGraph::from_arcs(4, (0..3).map(|v| (v, v + 1, 1)))?;
/// let mut clique = Clique::new(4);
/// let near = k_nearest_matrix(&mut clique, &g.augmented_weight_matrix(), 2)?;
/// assert_eq!(near[0].iter().map(|(c, _)| c).collect::<Vec<_>>(), vec![0, 1]);
/// assert_eq!(near[3].nnz(), 1); // the sink only knows itself
/// # Ok(())
/// # }
/// ```
pub fn k_nearest_matrix(
    clique: &mut Clique,
    w: &cc_matrix::SparseMatrix<cc_matrix::AugDist>,
    k: usize,
) -> Result<Vec<SparseRow<cc_matrix::AugDist>>, DistanceError> {
    let n = clique.n();
    if w.n() != n {
        return Err(invalid(format!("matrix has {} rows but clique has {n}", w.n())));
    }
    if k == 0 {
        return Err(invalid("k-nearest needs k >= 1"));
    }
    let k = k.min(n);
    clique.with_phase("knearest", |clique| {
        // Local input: node v knows its incident edges, i.e. row v of W.
        let mut x = w.filtered::<AugMinPlus>(k);
        let squarings = (usize::BITS - (k - 1).leading_zeros()) as usize; // ceil(log2 k)
        for _ in 0..squarings {
            let x_cols = cc_matmul::layout::transpose_exchange::<AugMinPlus>(clique, x.rows())?;
            let rows = cc_matmul::filtered_multiply::<AugMinPlus>(clique, x.rows(), &x_cols, k)?;
            x = cc_matrix::SparseMatrix::from_rows(rows);
        }
        Ok(x.rows().to_vec())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::{generators, reference};

    fn check_against_reference(g: &Graph, k: usize) {
        let mut clique = Clique::new(g.n());
        let got = k_nearest(&mut clique, g, k).unwrap();
        for v in 0..g.n() {
            let expected = reference::k_nearest(g, v, k);
            let got_v: Vec<(usize, u64, u32)> = {
                let mut items: Vec<(u64, u32, usize)> =
                    got[v].iter().map(|(c, a)| (a.dist, a.hops, c as usize)).collect();
                items.sort_unstable();
                items.into_iter().map(|(d, h, u)| (u, d, h)).collect()
            };
            assert_eq!(got_v, expected, "node {v} of {}-node graph, k={k}", g.n());
        }
    }

    #[test]
    fn path_graph_exact() {
        check_against_reference(&generators::path(12).unwrap(), 4);
    }

    #[test]
    fn star_graph_exact() {
        // High-degree centre: sparse input, dense square.
        check_against_reference(&generators::star(12).unwrap(), 5);
    }

    #[test]
    fn weighted_gnp_exact() {
        let g = generators::gnp_weighted(24, 0.15, 50, 3).unwrap();
        for k in [1, 2, 5, 24] {
            check_against_reference(&g, k);
        }
    }

    #[test]
    fn grid_exact() {
        check_against_reference(&generators::grid(5, 5).unwrap(), 6);
    }

    #[test]
    fn cliques_with_bridges_exact() {
        check_against_reference(&generators::cliques_with_bridges(3, 5, 7).unwrap(), 8);
    }

    #[test]
    fn k_larger_than_component() {
        // Disconnected graph: rows contain only the component.
        let g = Graph::from_edges(6, [(0, 1, 1), (2, 3, 1)]).unwrap();
        let mut clique = Clique::new(6);
        let got = k_nearest(&mut clique, &g, 5).unwrap();
        assert_eq!(got[0].nnz(), 2); // {0, 1}
        assert_eq!(got[4].nnz(), 1); // {4}
    }

    #[test]
    fn rejects_bad_parameters() {
        let g = generators::path(4).unwrap();
        let mut clique = Clique::new(4);
        assert!(matches!(
            k_nearest(&mut clique, &g, 0),
            Err(DistanceError::InvalidParameter { .. })
        ));
        let mut clique = Clique::new(8);
        assert!(matches!(
            k_nearest(&mut clique, &g, 2),
            Err(DistanceError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn round_cost_polylog_for_small_k() {
        let g = generators::gnp(64, 0.2, 9).unwrap();
        let mut clique = Clique::new(64);
        k_nearest(&mut clique, &g, 8).unwrap();
        // 3 filtered squarings, each O(log W): comfortably sub-1000 under
        // the unit cost model, vs Θ(n) for naive gossip.
        assert!(clique.rounds() < 700, "got {}", clique.rounds());
    }
}
