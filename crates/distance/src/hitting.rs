//! Deterministic hitting sets — **Lemma 4**.
//!
//! Given per-node sets `S_v` of size ≥ `k`, construct a set `A` of size
//! `O(n log n / k)` that intersects every `S_v`. The paper cites the
//! deterministic construction of Parter–Yogev [52] running in
//! `O((log log n)³)` rounds; reproducing that separate paper is out of
//! scope, so this implementation substitutes a construction with the same
//! *interface* (see DESIGN.md):
//!
//! * membership is decided by a seeded hash with probability
//!   `p = min(1, 2·ln n / k)` — deterministic given the seed, no
//!   communication;
//! * every node locally verifies that its set is hit; the (w.h.p. zero)
//!   un-hit nodes promote their smallest member in one broadcast round;
//! * the round cost `O((log log n)³)` of the cited construction is charged
//!   explicitly so downstream round counts match the paper's accounting.
//!
//! The result always hits every set (repair guarantees it) and has expected
//! size `2·n·ln n/k + O(1)`; both properties are enforced by tests.

use cc_clique::Clique;
use cc_graph::Graph;
use cc_matrix::SparseRow;

use crate::error::invalid;
use crate::DistanceError;

/// A hitting set over the clique's node ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HittingSet {
    /// Members in increasing id order.
    pub members: Vec<usize>,
    /// Membership indicator, indexed by node id.
    pub in_set: Vec<bool>,
}

impl HittingSet {
    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `v` is a member.
    pub fn contains(&self, v: usize) -> bool {
        self.in_set.get(v).copied().unwrap_or(false)
    }

    /// The member of smallest augmented distance in a `k`-nearest row —
    /// the node `p(v)` of §4.1 (closest hitter, ties by the row's
    /// augmented order then id).
    pub fn closest_in_row(
        &self,
        row: &SparseRow<cc_matrix::AugDist>,
    ) -> Option<(usize, cc_matrix::AugDist)> {
        self.closest_of(row.iter())
    }

    /// [`closest_in_row`](Self::closest_in_row) over any `(id, distance)`
    /// entry stream — the same selection rule for callers (like the direct
    /// builder) that hold plain vectors instead of sparse rows.
    pub fn closest_of<'a>(
        &self,
        entries: impl IntoIterator<Item = (u32, &'a cc_matrix::AugDist)>,
    ) -> Option<(usize, cc_matrix::AugDist)> {
        entries
            .into_iter()
            .filter(|(c, _)| self.contains(*c as usize))
            .min_by_key(|(c, a)| (**a, *c))
            .map(|(c, a)| (c as usize, *a))
    }

    /// Builds a hitting set for the neighbourhoods `N(v)` of all nodes with
    /// degree ≥ `k` (the high-degree phase of §6.3).
    ///
    /// # Errors
    ///
    /// Propagates [`hitting_set`] errors.
    pub fn for_high_degree(
        clique: &mut Clique,
        graph: &Graph,
        k: usize,
        seed: u64,
    ) -> Result<HittingSet, DistanceError> {
        let sets: Vec<Vec<usize>> = (0..graph.n())
            .map(|v| {
                if graph.degree(v) >= k {
                    graph.neighbors(v).iter().map(|&(u, _)| u).collect()
                } else {
                    Vec::new() // below threshold: nothing to hit
                }
            })
            .collect();
        hitting_set(clique, &sets, k, seed)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// **Lemma 4**: a hitting set of size `O(n log n / k)` for the family
/// `{S_v}` (with `|S_v| ≥ k` for the size bound; smaller non-empty sets are
/// still guaranteed hit via the repair step). Charged
/// `O((log log n)³)` rounds plus one repair broadcast.
///
/// Empty sets are skipped (nothing to hit).
///
/// # Errors
///
/// * [`DistanceError::InvalidParameter`] if `sets` doesn't match the clique
///   size, references out-of-range nodes, or `k == 0`.
///
/// # Example
///
/// ```
/// use cc_clique::Clique;
/// use cc_distance::hitting_set;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let n = 64;
/// // Every node's set: the 8 ids following it (cyclically).
/// let sets: Vec<Vec<usize>> =
///     (0..n).map(|v| (1..=8).map(|i| (v + i) % n).collect()).collect();
/// let mut clique = Clique::new(n);
/// let hs = hitting_set(&mut clique, &sets, 8, 42)?;
/// assert!(sets.iter().all(|s| s.iter().any(|&w| hs.contains(w))));
/// # Ok(())
/// # }
/// ```
pub fn hitting_set(
    clique: &mut Clique,
    sets: &[Vec<usize>],
    k: usize,
    seed: u64,
) -> Result<HittingSet, DistanceError> {
    let n = clique.n();
    if sets.len() != n {
        return Err(invalid(format!("sets has length {} but clique has {n}", sets.len())));
    }

    // Charge the cited deterministic construction's cost.
    let loglog = (n.max(4) as f64).log2().log2().ceil().max(1.0) as u64;
    clique.charge("hitting_set", loglog.pow(3));

    let (hs, repair) = hitting_set_local(sets, k, seed)?;
    // The repair words cross the wire (one all-to-all broadcast round);
    // their effect is already folded into `hs` by the shared local kernel.
    clique.with_phase("hitting_set", |cl| cl.all_broadcast(repair))?;
    Ok(hs)
}

/// The purely local kernel of [`hitting_set`]: seeded membership plus the
/// repair pass, with no clique and no round accounting. Returns the set
/// together with the per-node repair words the clique wrapper broadcasts
/// (`u64::MAX` = "already hit, nothing to promote").
///
/// [`hitting_set`] delegates here, so a direct (no-clique) builder that
/// calls this picks the **same members** as a simulated-clique build —
/// the bit-identity contract of `cc-oracle`'s differential suite.
///
/// # Errors
///
/// [`DistanceError::InvalidParameter`] if a set references out-of-range
/// nodes or `k == 0`.
pub fn hitting_set_local(
    sets: &[Vec<usize>],
    k: usize,
    seed: u64,
) -> Result<(HittingSet, Vec<u64>), DistanceError> {
    let n = sets.len();
    if k == 0 {
        return Err(invalid("hitting set needs k >= 1"));
    }
    for (v, set) in sets.iter().enumerate() {
        if let Some(&w) = set.iter().find(|&&w| w >= n) {
            return Err(invalid(format!("node {v} references member {w} outside 0..{n}")));
        }
    }

    // Seeded pseudorandom membership with p = min(1, 2 ln n / k).
    let p = (2.0 * (n.max(2) as f64).ln() / k as f64).min(1.0);
    let threshold = (p * u64::MAX as f64) as u64;
    let mut in_set: Vec<bool> = (0..n)
        .map(|v| splitmix64(seed ^ (v as u64).wrapping_mul(0x517c_c1b7_2722_0a95)) <= threshold)
        .collect();

    // Local verification; un-hit nodes promote their smallest member.
    // `NO_REPAIR` marks an already-hit set in the packed repair word (node
    // ids are `< n`, so it cannot collide).
    const NO_REPAIR: u64 = u64::MAX;
    let repair: Vec<u64> = (0..n)
        .map(|v| {
            if sets[v].is_empty() || sets[v].iter().any(|&w| in_set[w]) {
                NO_REPAIR
            } else {
                *sets[v].iter().min().expect("nonempty") as u64
            }
        })
        .collect();
    for &r in &repair {
        if r != NO_REPAIR {
            in_set[r as usize] = true;
        }
    }

    let members = (0..n).filter(|&v| in_set[v]).collect();
    Ok((HittingSet { members, in_set }, repair))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::generators;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_sets(n: usize, k: usize, seed: u64) -> Vec<Vec<usize>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut set = std::collections::BTreeSet::new();
                while set.len() < k {
                    set.insert(rng.gen_range(0..n));
                }
                set.into_iter().collect()
            })
            .collect()
    }

    #[test]
    fn always_hits_every_set() {
        for seed in 0..5 {
            let n = 64;
            let k = 8;
            let sets = random_sets(n, k, seed);
            let mut clique = Clique::new(n);
            let hs = hitting_set(&mut clique, &sets, k, seed).unwrap();
            for (v, set) in sets.iter().enumerate() {
                assert!(set.iter().any(|&w| hs.contains(w)), "set of node {v} not hit");
            }
        }
    }

    #[test]
    fn size_is_near_n_log_n_over_k() {
        let n = 256;
        let k = 32;
        let sets = random_sets(n, k, 7);
        let mut clique = Clique::new(n);
        let hs = hitting_set(&mut clique, &sets, k, 99).unwrap();
        let bound = (4.0 * n as f64 * (n as f64).ln() / k as f64) as usize + 4;
        assert!(hs.len() <= bound, "hitting set too big: {} > {bound}", hs.len());
        assert!(!hs.is_empty());
    }

    #[test]
    fn deterministic_in_seed() {
        let sets = random_sets(32, 4, 3);
        let mut c1 = Clique::new(32);
        let mut c2 = Clique::new(32);
        let a = hitting_set(&mut c1, &sets, 4, 5).unwrap();
        let b = hitting_set(&mut c2, &sets, 4, 5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn handles_small_and_empty_sets() {
        // Sets smaller than k still get hit; empty sets are skipped.
        let sets = vec![vec![3], vec![], vec![0, 1], vec![]];
        let mut clique = Clique::new(4);
        let hs = hitting_set(&mut clique, &sets, 4, 1).unwrap();
        assert!(hs.contains(3) || sets[0].iter().any(|&w| hs.contains(w)));
        assert!(sets[2].iter().any(|&w| hs.contains(w)));
    }

    #[test]
    fn local_kernel_matches_the_clique_wrapper() {
        // The wrapper only adds round accounting on top of the shared local
        // kernel — the set itself must be bit-identical.
        for seed in 0..4 {
            let sets = random_sets(48, 6, seed);
            let mut clique = Clique::new(48);
            let in_clique = hitting_set(&mut clique, &sets, 6, seed ^ 0xabc).unwrap();
            let (local, _) = hitting_set_local(&sets, 6, seed ^ 0xabc).unwrap();
            assert_eq!(in_clique, local);
        }
    }

    #[test]
    fn closest_in_row_respects_order() {
        let hs = HittingSet {
            members: vec![2, 5],
            in_set: vec![false, false, true, false, false, true],
        };
        let row = SparseRow::from_entries::<cc_matrix::AugMinPlus>(vec![
            (1, cc_matrix::AugDist::fin(1, 1)),
            (2, cc_matrix::AugDist::fin(4, 2)),
            (5, cc_matrix::AugDist::fin(3, 9)),
        ]);
        // Node 5 at distance 3 beats node 2 at distance 4.
        assert_eq!(hs.closest_in_row(&row), Some((5, cc_matrix::AugDist::fin(3, 9))));
    }

    #[test]
    fn high_degree_neighbourhoods() {
        let g = generators::star(32).unwrap();
        let mut clique = Clique::new(32);
        let hs = HittingSet::for_high_degree(&mut clique, &g, 8, 11).unwrap();
        // Only the centre has degree >= 8; its neighbourhood must be hit.
        assert!((1..32).any(|v| hs.contains(v)));
    }

    #[test]
    fn rejects_bad_parameters() {
        let mut clique = Clique::new(4);
        assert!(hitting_set(&mut clique, &[], 2, 0).is_err());
        assert!(hitting_set(&mut clique, &vec![vec![9]; 4], 2, 0).is_err());
        assert!(hitting_set(&mut clique, &vec![vec![0]; 4], 0, 0).is_err());
    }
}
