//! Directed graphs.
//!
//! The paper's distance *tools* (§3: k-nearest, source detection, distance
//! through sets) work on directed graphs — only the hopset-based headline
//! algorithms require undirectedness (and §8 explains why directed
//! sub-polynomial APSP would imply faster matrix multiplication). This
//! module provides the directed input type and sequential references; the
//! matrix-level tool entry points in `cc-distance` consume its weight
//! matrices directly.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use cc_matrix::{AugDist, AugMinPlus, Dist, MinPlus, SparseMatrix};

use crate::GraphError;

/// A directed graph with non-negative integer arc weights. Parallel arcs
/// collapse to the lightest; self-loops are rejected.
///
/// # Example
///
/// ```
/// use cc_graph::DiGraph;
///
/// # fn main() -> Result<(), cc_graph::GraphError> {
/// let g = DiGraph::from_arcs(3, [(0, 1, 4), (1, 2, 1)])?;
/// assert_eq!(g.weight(0, 1), Some(4));
/// assert_eq!(g.weight(1, 0), None); // one-way
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiGraph {
    n: usize,
    out: Vec<Vec<(usize, u64)>>,
    m: usize,
}

impl DiGraph {
    /// An arcless digraph on `n` nodes.
    pub fn empty(n: usize) -> Self {
        DiGraph { n, out: vec![Vec::new(); n], m: 0 }
    }

    /// Builds a digraph from arcs `(u, v, w)` meaning `u → v`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] or [`GraphError::SelfLoop`].
    pub fn from_arcs(
        n: usize,
        arcs: impl IntoIterator<Item = (usize, usize, u64)>,
    ) -> Result<Self, GraphError> {
        let mut g = DiGraph::empty(n);
        for (u, v, w) in arcs {
            g.add_arc(u, v, w)?;
        }
        Ok(g)
    }

    /// Inserts arc `u → v` with weight `w` (lighter weight wins on
    /// duplicates).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] or [`GraphError::SelfLoop`].
    pub fn add_arc(&mut self, u: usize, v: usize, w: u64) -> Result<(), GraphError> {
        if u >= self.n {
            return Err(GraphError::NodeOutOfRange { node: u, n: self.n });
        }
        if v >= self.n {
            return Err(GraphError::NodeOutOfRange { node: v, n: self.n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        match self.out[u].binary_search_by_key(&v, |&(x, _)| x) {
            Ok(i) => self.out[u][i].1 = self.out[u][i].1.min(w),
            Err(i) => {
                self.out[u].insert(i, (v, w));
                self.m += 1;
            }
        }
        Ok(())
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of arcs.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Outgoing arcs of `v`, sorted by head.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn out_neighbors(&self, v: usize) -> &[(usize, u64)] {
        &self.out[v]
    }

    /// Weight of arc `u → v`, if present.
    pub fn weight(&self, u: usize, v: usize) -> Option<u64> {
        self.out[u].binary_search_by_key(&v, |&(x, _)| x).ok().map(|i| self.out[u][i].1)
    }

    /// Iterates over all arcs as `(u, v, w)`.
    pub fn arcs(&self) -> impl Iterator<Item = (usize, usize, u64)> + '_ {
        self.out.iter().enumerate().flat_map(|(u, list)| list.iter().map(move |&(v, w)| (u, v, w)))
    }

    /// The weight matrix over min-plus: `0` diagonal, `w(u,v)` on arcs.
    pub fn weight_matrix(&self) -> SparseMatrix<Dist> {
        let mut m = SparseMatrix::identity::<MinPlus>(self.n);
        for (u, v, w) in self.arcs() {
            m.set_in::<MinPlus>(u, v, Dist::fin(w));
        }
        m
    }

    /// The augmented weight matrix of §3.1: `(0,0)` diagonal, `(w,1)` on
    /// arcs — the input the directed distance tools consume.
    pub fn augmented_weight_matrix(&self) -> SparseMatrix<AugDist> {
        let mut m = SparseMatrix::identity::<AugMinPlus>(self.n);
        for (u, v, w) in self.arcs() {
            m.set_in::<AugMinPlus>(u, v, AugDist::fin(w, 1));
        }
        m
    }
}

/// Directed single-source distances over the augmented order: per node, the
/// pair `(d(src,·), minimal hops among shortest paths)`.
///
/// # Panics
///
/// Panics if `src >= g.n()`.
pub fn dijkstra_directed(g: &DiGraph, src: usize) -> Vec<Option<(u64, u32)>> {
    assert!(src < g.n(), "source out of range");
    let mut best: Vec<Option<(u64, u32)>> = vec![None; g.n()];
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0u64, 0u32, src)));
    while let Some(Reverse((d, h, v))) = heap.pop() {
        match best[v] {
            Some(b) if b <= (d, h) => continue,
            _ => {}
        }
        best[v] = Some((d, h));
        for &(u, w) in g.out_neighbors(v) {
            let cand = (d + w, h + 1);
            if best[u].is_none_or(|b| cand < b) {
                heap.push(Reverse((cand.0, cand.1, u)));
            }
        }
    }
    best
}

/// Directed hop-bounded distances `d^β(src, ·)`.
///
/// # Panics
///
/// Panics if `src >= g.n()`.
pub fn hop_bounded_directed(g: &DiGraph, src: usize, beta: usize) -> Vec<Option<u64>> {
    assert!(src < g.n(), "source out of range");
    let mut cur: Vec<Option<u64>> = vec![None; g.n()];
    cur[src] = Some(0);
    for _ in 0..beta {
        let mut next = cur.clone();
        for v in 0..g.n() {
            if let Some(d) = cur[v] {
                for &(u, w) in g.out_neighbors(v) {
                    let cand = d + w;
                    if next[u].is_none_or(|b| cand < b) {
                        next[u] = Some(cand);
                    }
                }
            }
        }
        cur = next;
    }
    cur
}

/// A random digraph: every ordered pair becomes an arc with probability
/// `p`, weights uniform in `1..=max_weight`, plus a directed Hamiltonian
/// cycle so every node reaches every other.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] unless `n ≥ 2`, `0 ≤ p ≤ 1` and
/// `max_weight ≥ 1`.
pub fn gnp_directed(n: usize, p: f64, max_weight: u64, seed: u64) -> Result<DiGraph, GraphError> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    if n < 2 || !(0.0..=1.0).contains(&p) || max_weight < 1 {
        return Err(GraphError::InvalidParameter {
            what: "gnp_directed needs n >= 2, 0 <= p <= 1, max_weight >= 1".to_owned(),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DiGraph::empty(n);
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.gen_bool(p) {
                g.add_arc(u, v, rng.gen_range(1..=max_weight))?;
            }
        }
    }
    for v in 0..n {
        let u = (v + 1) % n;
        if g.weight(v, u).is_none() {
            g.add_arc(v, u, rng.gen_range(1..=max_weight))?;
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arcs_are_one_way() {
        let g = DiGraph::from_arcs(3, [(0, 1, 2), (1, 2, 3), (0, 1, 1)]).unwrap();
        assert_eq!(g.m(), 2);
        assert_eq!(g.weight(0, 1), Some(1)); // parallel arc keeps min
        assert_eq!(g.weight(1, 0), None);
        assert_eq!(g.out_neighbors(0), &[(1, 1)]);
    }

    #[test]
    fn rejects_malformed_arcs() {
        assert!(DiGraph::from_arcs(2, [(0, 5, 1)]).is_err());
        assert!(DiGraph::from_arcs(2, [(1, 1, 1)]).is_err());
    }

    #[test]
    fn directed_dijkstra_respects_orientation() {
        let g = DiGraph::from_arcs(4, [(0, 1, 1), (1, 2, 1), (2, 3, 1)]).unwrap();
        let from0 = dijkstra_directed(&g, 0);
        assert_eq!(from0[3], Some((3, 3)));
        let from3 = dijkstra_directed(&g, 3);
        assert_eq!(from3[0], None); // no way back
    }

    #[test]
    fn hop_bounded_directed_limits_hops() {
        let g = DiGraph::from_arcs(4, [(0, 1, 1), (1, 2, 1), (2, 3, 1)]).unwrap();
        assert_eq!(hop_bounded_directed(&g, 0, 2)[3], None);
        assert_eq!(hop_bounded_directed(&g, 0, 3)[3], Some(3));
    }

    #[test]
    fn weight_matrices_are_asymmetric() {
        let g = DiGraph::from_arcs(3, [(0, 1, 7)]).unwrap();
        let w = g.augmented_weight_matrix();
        assert!(w.get(0, 1).is_some());
        assert!(w.get(1, 0).is_none());
        assert_eq!(w.get(2, 2), Some(&AugDist::ZERO));
    }

    #[test]
    fn gnp_directed_is_strongly_connected() {
        let g = gnp_directed(24, 0.05, 9, 3).unwrap();
        for v in [0, 7, 23] {
            assert!(dijkstra_directed(&g, v).iter().all(Option::is_some));
        }
        assert!(gnp_directed(1, 0.5, 1, 0).is_err());
    }
}
