use std::error::Error;
use std::fmt;

/// Errors raised when constructing graphs or workloads.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint was outside `0..n`.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// Number of nodes in the graph.
        n: usize,
    },
    /// A self-loop was supplied (the model works on simple graphs).
    SelfLoop {
        /// The node with the loop.
        node: usize,
    },
    /// A generator was called with parameters outside its domain.
    InvalidParameter {
        /// Human-readable description of the violated constraint.
        what: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} is outside the graph 0..{n}")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            GraphError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(GraphError::SelfLoop { node: 3 }.to_string().contains('3'));
        assert!(GraphError::NodeOutOfRange { node: 8, n: 4 }.to_string().contains("0..4"));
    }
}
