use cc_matrix::{AugDist, AugMinPlus, Dist, MinPlus, SparseMatrix};

use crate::GraphError;

/// An undirected graph with non-negative integer edge weights — the input
/// class of the paper (§1.5: weights are non-negative integers in `poly(n)`).
///
/// Stored as adjacency lists sorted by neighbour id; parallel edges collapse
/// to the lightest weight, self-loops are rejected. Unweighted graphs are the
/// special case of all weights `1`.
///
/// # Example
///
/// ```
/// use cc_graph::Graph;
///
/// # fn main() -> Result<(), cc_graph::GraphError> {
/// let g = Graph::from_edges(4, [(0, 1, 3), (1, 2, 1), (2, 3, 2)])?;
/// assert_eq!(g.n(), 4);
/// assert_eq!(g.m(), 3);
/// assert_eq!(g.weight(1, 2), Some(1));
/// assert_eq!(g.degree(1), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    adj: Vec<Vec<(usize, u64)>>,
    m: usize,
    max_weight: u64,
}

impl Graph {
    /// An edgeless graph on `n` nodes.
    pub fn empty(n: usize) -> Self {
        Graph { n, adj: vec![Vec::new(); n], m: 0, max_weight: 0 }
    }

    /// Builds a graph from weighted edges `(u, v, w)`.
    ///
    /// Parallel edges keep the smallest weight.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] or [`GraphError::SelfLoop`] for
    /// malformed edges.
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (usize, usize, u64)>,
    ) -> Result<Self, GraphError> {
        let mut g = Graph::empty(n);
        for (u, v, w) in edges {
            g.add_edge(u, v, w)?;
        }
        Ok(g)
    }

    /// Builds an unweighted graph (all weights `1`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Graph::from_edges`].
    pub fn from_unweighted_edges(
        n: usize,
        edges: impl IntoIterator<Item = (usize, usize)>,
    ) -> Result<Self, GraphError> {
        Self::from_edges(n, edges.into_iter().map(|(u, v)| (u, v, 1)))
    }

    /// Inserts edge `{u, v}` with weight `w` (keeping the lighter weight if
    /// the edge exists).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] or [`GraphError::SelfLoop`].
    pub fn add_edge(&mut self, u: usize, v: usize, w: u64) -> Result<(), GraphError> {
        if u >= self.n {
            return Err(GraphError::NodeOutOfRange { node: u, n: self.n });
        }
        if v >= self.n {
            return Err(GraphError::NodeOutOfRange { node: v, n: self.n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        let inserted = Self::insert_half(&mut self.adj[u], v, w);
        Self::insert_half(&mut self.adj[v], u, w);
        if inserted {
            self.m += 1;
        }
        self.max_weight = self.max_weight.max(w);
        Ok(())
    }

    fn insert_half(list: &mut Vec<(usize, u64)>, v: usize, w: u64) -> bool {
        match list.binary_search_by_key(&v, |&(x, _)| x) {
            Ok(i) => {
                list[i].1 = list[i].1.min(w);
                false
            }
            Err(i) => {
                list.insert(i, (v, w));
                true
            }
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Largest edge weight (0 for an edgeless graph).
    pub fn max_weight(&self) -> u64 {
        self.max_weight
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// Neighbours of `v` with edge weights, sorted by neighbour id.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn neighbors(&self, v: usize) -> &[(usize, u64)] {
        &self.adj[v]
    }

    /// Weight of edge `{u, v}`, if present.
    pub fn weight(&self, u: usize, v: usize) -> Option<u64> {
        self.adj[u].binary_search_by_key(&v, |&(x, _)| x).ok().map(|i| self.adj[u][i].1)
    }

    /// Whether edge `{u, v}` is present.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.weight(u, v).is_some()
    }

    /// Iterates over each undirected edge once, as `(u, v, w)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, u64)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, list)| {
            list.iter().filter(move |&&(v, _)| u < v).map(move |&(v, w)| (u, v, w))
        })
    }

    /// Whether every weight is `1` (the paper's unweighted case).
    pub fn is_unweighted(&self) -> bool {
        self.edges().all(|(_, _, w)| w == 1)
    }

    /// The subgraph induced by dropping every node of degree `>= threshold`
    /// (used by the unweighted APSP algorithm, §6.3). Node ids are preserved;
    /// removed nodes become isolated.
    pub fn low_degree_subgraph(&self, threshold: usize) -> Graph {
        let keep: Vec<bool> = (0..self.n).map(|v| self.degree(v) < threshold).collect();
        let mut g = Graph::empty(self.n);
        for (u, v, w) in self.edges() {
            if keep[u] && keep[v] {
                g.add_edge(u, v, w).expect("edges of a valid graph remain valid");
            }
        }
        g
    }

    /// The weight matrix over the min-plus semiring: `0` on the diagonal,
    /// `w(u,v)` on edges, `∞` (implicit) elsewhere.
    pub fn weight_matrix(&self) -> SparseMatrix<Dist> {
        let mut m = SparseMatrix::identity::<MinPlus>(self.n);
        for (u, v, w) in self.edges() {
            m.set_in::<MinPlus>(u, v, Dist::fin(w));
            m.set_in::<MinPlus>(v, u, Dist::fin(w));
        }
        m
    }

    /// The augmented weight matrix `W` of §3.1: `(0,0)` on the diagonal,
    /// `(w(u,v), 1)` on edges, `(∞,∞)` (implicit) elsewhere.
    pub fn augmented_weight_matrix(&self) -> SparseMatrix<AugDist> {
        let mut m = SparseMatrix::identity::<AugMinPlus>(self.n);
        for (u, v, w) in self.edges() {
            m.set_in::<AugMinPlus>(u, v, AugDist::fin(w, 1));
            m.set_in::<AugMinPlus>(v, u, AugDist::fin(w, 1));
        }
        m
    }

    /// Merges another edge set into this graph (e.g. `G ∪ H` for a hopset
    /// `H`), keeping the lighter weight on common edges.
    ///
    /// # Errors
    ///
    /// Returns an error if `edges` contains malformed pairs.
    pub fn union_edges(
        &self,
        edges: impl IntoIterator<Item = (usize, usize, u64)>,
    ) -> Result<Graph, GraphError> {
        let mut g = self.clone();
        for (u, v, w) in edges {
            g.add_edge(u, v, w)?;
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let g = Graph::from_edges(4, [(0, 1, 3), (1, 2, 1), (0, 1, 2)]).unwrap();
        assert_eq!(g.m(), 2);
        assert_eq!(g.weight(0, 1), Some(2)); // parallel edge keeps min
        assert_eq!(g.weight(1, 0), Some(2));
        assert_eq!(g.weight(0, 3), None);
        assert_eq!(g.max_weight(), 3);
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.neighbors(1), &[(0, 2), (2, 1)]);
    }

    #[test]
    fn rejects_malformed_edges() {
        assert_eq!(
            Graph::from_edges(2, [(0, 5, 1)]).unwrap_err(),
            GraphError::NodeOutOfRange { node: 5, n: 2 }
        );
        assert_eq!(
            Graph::from_edges(2, [(1, 1, 1)]).unwrap_err(),
            GraphError::SelfLoop { node: 1 }
        );
    }

    #[test]
    fn edges_iterates_once_per_edge() {
        let g = Graph::from_unweighted_edges(3, [(0, 1), (1, 2), (0, 2)]).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1, 1), (0, 2, 1), (1, 2, 1)]);
        assert!(g.is_unweighted());
    }

    #[test]
    fn weight_matrices_have_diagonal_and_edges() {
        let g = Graph::from_edges(3, [(0, 1, 7)]).unwrap();
        let w = g.weight_matrix();
        assert_eq!(w.get(0, 0), Some(&Dist::ZERO));
        assert_eq!(w.get(0, 1), Some(&Dist::fin(7)));
        assert_eq!(w.get(1, 2), None);
        let aw = g.augmented_weight_matrix();
        assert_eq!(aw.get(1, 0), Some(&AugDist::fin(7, 1)));
        assert_eq!(aw.get(2, 2), Some(&AugDist::ZERO));
    }

    #[test]
    fn low_degree_subgraph_drops_hubs() {
        // Star with centre 0 plus an edge 1-2.
        let g = Graph::from_unweighted_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4), (1, 2)]).unwrap();
        let low = g.low_degree_subgraph(3);
        assert_eq!(low.degree(0), 0); // centre removed
        assert!(low.has_edge(1, 2));
        assert_eq!(low.m(), 1);
    }

    #[test]
    fn union_edges_takes_min_weight() {
        let g = Graph::from_edges(3, [(0, 1, 9)]).unwrap();
        let h = g.union_edges([(0, 1, 4), (1, 2, 2)]).unwrap();
        assert_eq!(h.weight(0, 1), Some(4));
        assert_eq!(h.weight(1, 2), Some(2));
        assert_eq!(g.weight(0, 1), Some(9)); // original untouched
    }
}
