//! # `cc-graph`: graphs, workload generators and sequential references
//!
//! Support crate for the Congested Clique shortest-paths reproduction:
//!
//! * [`Graph`] — undirected graphs with non-negative integer weights
//!   (the paper's input class, §1.5), plus conversion to the weight matrices
//!   the distributed algorithms consume;
//! * [`generators`] — deterministic, seeded workload generators covering the
//!   regimes that drive the paper's case analyses (dense/sparse, low/high
//!   diameter, high-degree vs. low-degree shortest paths);
//! * [`mod@reference`] — sequential ground truth (Dijkstra, BFS, hop-bounded
//!   distances, exact diameter, shortest-path diameter) that every
//!   distributed algorithm is differentially tested against.
//!
//! # Example
//!
//! ```
//! use cc_graph::{generators, reference};
//!
//! # fn main() -> Result<(), cc_graph::GraphError> {
//! let g = generators::grid(4, 4)?;
//! let dist = reference::dijkstra(&g, 0);
//! assert_eq!(dist[15], Some(6)); // corner to corner of a 4x4 grid
//! # Ok(())
//! # }
//! ```
//!
//! Unsafe code is forbidden (`#![forbid(unsafe_code)]`), as across the
//! whole workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Distributed algorithms index many parallel per-node vectors by NodeId;
// iterator zips would obscure which node each access belongs to.
#![allow(clippy::needless_range_loop)]

mod digraph;
mod error;
#[allow(clippy::module_inception)]
mod graph;

pub mod generators;
pub mod reference;

pub use digraph::{dijkstra_directed, gnp_directed, hop_bounded_directed, DiGraph};
pub use error::GraphError;
pub use graph::Graph;
