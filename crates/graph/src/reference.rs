//! Sequential ground-truth algorithms.
//!
//! Every distributed computation in this workspace is differentially tested
//! against these references. They are deliberately simple — correctness over
//! speed — and cover exactly the quantities the paper's algorithms output:
//! distances, hop-consistent `(distance, hops)` pairs, hop-bounded distances
//! (for hopset verification), diameter, and shortest-path diameter (for the
//! Bellman-Ford baseline's round bound).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::Graph;

/// Single-source shortest path distances by Dijkstra; `None` = unreachable.
///
/// # Panics
///
/// Panics if `src >= g.n()`.
pub fn dijkstra(g: &Graph, src: usize) -> Vec<Option<u64>> {
    dijkstra_with_hops(g, src).into_iter().map(|o| o.map(|(d, _)| d)).collect()
}

/// Dijkstra over the augmented order: returns, per node, the pair
/// `(d(src,·), minimal hop count among shortest paths)` — exactly the value
/// the augmented min-plus semiring computes (§3.1).
///
/// # Panics
///
/// Panics if `src >= g.n()`.
pub fn dijkstra_with_hops(g: &Graph, src: usize) -> Vec<Option<(u64, u32)>> {
    assert!(src < g.n(), "source out of range");
    let mut best: Vec<Option<(u64, u32)>> = vec![None; g.n()];
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0u64, 0u32, src)));
    while let Some(Reverse((d, h, v))) = heap.pop() {
        match best[v] {
            Some(b) if b <= (d, h) => continue,
            _ => {}
        }
        best[v] = Some((d, h));
        for &(u, w) in g.neighbors(v) {
            let cand = (d + w, h + 1);
            if best[u].is_none_or(|b| cand < b) {
                heap.push(Reverse((cand.0, cand.1, u)));
            }
        }
    }
    best
}

/// Unweighted single-source hop distances by BFS; `None` = unreachable.
///
/// # Panics
///
/// Panics if `src >= g.n()`.
pub fn bfs(g: &Graph, src: usize) -> Vec<Option<u64>> {
    assert!(src < g.n(), "source out of range");
    let mut dist = vec![None; g.n()];
    dist[src] = Some(0);
    let mut queue = std::collections::VecDeque::from([src]);
    while let Some(v) = queue.pop_front() {
        let d = dist[v].expect("queued nodes have distances");
        for &(u, _) in g.neighbors(v) {
            if dist[u].is_none() {
                dist[u] = Some(d + 1);
                queue.push_back(u);
            }
        }
    }
    dist
}

/// All-pairs shortest path distances (repeated Dijkstra).
pub fn all_pairs(g: &Graph) -> Vec<Vec<Option<u64>>> {
    (0..g.n()).map(|v| dijkstra(g, v)).collect()
}

/// Hop-bounded distance `d^β(src, ·)`: the weight of the lightest path using
/// at most `beta` edges (Bellman-Ford dynamic program).
///
/// # Panics
///
/// Panics if `src >= g.n()`.
pub fn hop_bounded(g: &Graph, src: usize, beta: usize) -> Vec<Option<u64>> {
    assert!(src < g.n(), "source out of range");
    let mut cur: Vec<Option<u64>> = vec![None; g.n()];
    cur[src] = Some(0);
    for _ in 0..beta {
        let mut next = cur.clone();
        for v in 0..g.n() {
            if let Some(d) = cur[v] {
                for &(u, w) in g.neighbors(v) {
                    let cand = d + w;
                    if next[u].is_none_or(|b| cand < b) {
                        next[u] = Some(cand);
                    }
                }
            }
        }
        cur = next;
    }
    cur
}

/// The `k` nearest nodes to `v` (including `v` itself), with their
/// `(distance, hops)` pairs, ordered by the augmented order
/// `(distance, hops, id)` — the same consistent tie-breaking the distributed
/// `k`-nearest tool uses (§3.2).
///
/// # Panics
///
/// Panics if `v >= g.n()`.
pub fn k_nearest(g: &Graph, v: usize, k: usize) -> Vec<(usize, u64, u32)> {
    let best = dijkstra_with_hops(g, v);
    let mut reachable: Vec<(u64, u32, usize)> =
        best.iter().enumerate().filter_map(|(u, o)| o.map(|(d, h)| (d, h, u))).collect();
    reachable.sort_unstable();
    reachable.truncate(k);
    reachable.into_iter().map(|(d, h, u)| (u, d, h)).collect()
}

/// Exact diameter: the largest finite pairwise distance. `None` for graphs
/// with no edges.
pub fn diameter(g: &Graph) -> Option<u64> {
    all_pairs(g).iter().flat_map(|row| row.iter().flatten()).copied().max().filter(|&d| d > 0)
}

/// Shortest-path diameter: the maximum over connected pairs of the minimal
/// hop count among shortest paths — the quantity that bounds distributed
/// Bellman-Ford's round count (§7.1, Lemma 32).
pub fn shortest_path_diameter(g: &Graph) -> usize {
    let mut spd = 0usize;
    for v in 0..g.n() {
        for entry in dijkstra_with_hops(g, v).into_iter().flatten() {
            spd = spd.max(entry.1 as usize);
        }
    }
    spd
}

/// Maximum finite distance from `v` (its eccentricity); `None` if `v` is
/// isolated.
///
/// # Panics
///
/// Panics if `v >= g.n()`.
pub fn eccentricity(g: &Graph, v: usize) -> Option<u64> {
    dijkstra(g, v).into_iter().flatten().max().filter(|&d| d > 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn dijkstra_on_weighted_path() {
        let g = Graph::from_edges(4, [(0, 1, 2), (1, 2, 3), (2, 3, 4)]).unwrap();
        assert_eq!(dijkstra(&g, 0), vec![Some(0), Some(2), Some(5), Some(9)]);
        assert_eq!(dijkstra(&g, 3), vec![Some(9), Some(7), Some(4), Some(0)]);
    }

    #[test]
    fn dijkstra_prefers_fewer_hops_on_ties() {
        // Two shortest paths 0->3 of weight 4: 0-1-2-3 (3 hops) and 0-3? no,
        // construct 0-1 (2), 1-3 (2) vs 0-2 (1), 2-4?(..) use explicit tie.
        let g = Graph::from_edges(4, [(0, 1, 2), (1, 3, 2), (0, 2, 1), (2, 3, 3)]).unwrap();
        let best = dijkstra_with_hops(&g, 0);
        assert_eq!(best[3], Some((4, 2))); // both paths weigh 4, min hops = 2
    }

    #[test]
    fn dijkstra_handles_disconnection() {
        let g = Graph::from_edges(4, [(0, 1, 1)]).unwrap();
        let d = dijkstra(&g, 0);
        assert_eq!(d[1], Some(1));
        assert_eq!(d[2], None);
    }

    #[test]
    fn bfs_matches_dijkstra_on_unweighted() {
        let g = generators::gnp(24, 0.15, 5).unwrap();
        for v in 0..4 {
            assert_eq!(bfs(&g, v), dijkstra(&g, v));
        }
    }

    #[test]
    fn hop_bounded_converges_to_true_distance() {
        let g = generators::path(6).unwrap();
        assert_eq!(hop_bounded(&g, 0, 2)[3], None);
        assert_eq!(hop_bounded(&g, 0, 3)[3], Some(3));
        assert_eq!(hop_bounded(&g, 0, 100), dijkstra(&g, 0));
    }

    #[test]
    fn hop_bounded_can_exceed_true_distance() {
        // 0-2 direct weight 5, or 0-1-2 weight 2: with beta=1 only direct.
        let g = Graph::from_edges(3, [(0, 2, 5), (0, 1, 1), (1, 2, 1)]).unwrap();
        assert_eq!(hop_bounded(&g, 0, 1)[2], Some(5));
        assert_eq!(hop_bounded(&g, 0, 2)[2], Some(2));
    }

    #[test]
    fn k_nearest_orders_by_distance_then_hops_then_id() {
        let g = generators::star(6).unwrap();
        // From leaf 1: itself (0), centre 0 (1), then leaves at distance 2.
        let near = k_nearest(&g, 1, 4);
        assert_eq!(near[0], (1, 0, 0));
        assert_eq!(near[1], (0, 1, 1));
        assert_eq!(near[2], (2, 2, 2));
        assert_eq!(near[3], (3, 2, 2));
    }

    #[test]
    fn diameter_of_known_families() {
        assert_eq!(diameter(&generators::path(10).unwrap()), Some(9));
        assert_eq!(diameter(&generators::cycle(10).unwrap()), Some(5));
        assert_eq!(diameter(&generators::star(10).unwrap()), Some(2));
        assert_eq!(diameter(&generators::grid(4, 4).unwrap()), Some(6));
    }

    #[test]
    fn spd_of_weighted_clique_chain() {
        // Weighted so that shortest paths hug the bridges.
        let g = generators::cliques_with_bridges(4, 4, 1).unwrap();
        let spd = shortest_path_diameter(&g);
        assert!(spd >= 6, "chained cliques have long shortest paths, got {spd}");
        assert_eq!(shortest_path_diameter(&generators::complete(8).unwrap()), 1);
    }

    #[test]
    fn eccentricity_on_path() {
        let g = generators::path(5).unwrap();
        assert_eq!(eccentricity(&g, 0), Some(4));
        assert_eq!(eccentricity(&g, 2), Some(2));
    }
}
