//! Deterministic, seeded workload generators.
//!
//! The paper's theorems are worst-case statements; these families exercise
//! the regimes that drive the different algorithms and case splits:
//!
//! * density: [`gnp`] / [`gnp_weighted`] from sparse to dense;
//! * diameter: [`path`], [`cycle`], [`grid`] (high) vs. [`gnp`] (low);
//! * degree structure: [`star`] and [`barabasi_albert`] (hubs — the
//!   high-degree case of §6.3) vs. [`grid`] (bounded degree — the low-degree
//!   case);
//! * modularity: [`cliques_with_bridges`] (long shortest paths through
//!   bottleneck edges, adversarial for hitting-set arguments).
//!
//! All generators are deterministic in their `seed`, so every experiment is
//! reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Graph, GraphError};

fn check(cond: bool, what: &str) -> Result<(), GraphError> {
    if cond {
        Ok(())
    } else {
        Err(GraphError::InvalidParameter { what: what.to_owned() })
    }
}

/// Erdős–Rényi `G(n, p)`, unweighted, made connected by threading a random
/// Hamiltonian path (so distance experiments never see `∞`).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] unless `n ≥ 2` and `0 ≤ p ≤ 1`.
pub fn gnp(n: usize, p: f64, seed: u64) -> Result<Graph, GraphError> {
    gnp_weighted(n, p, 1, seed)
}

/// Erdős–Rényi `G(n, p)` with uniform random integer weights in
/// `1..=max_weight`, made connected by a random Hamiltonian path.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] unless `n ≥ 2`, `0 ≤ p ≤ 1` and
/// `max_weight ≥ 1`.
pub fn gnp_weighted(n: usize, p: f64, max_weight: u64, seed: u64) -> Result<Graph, GraphError> {
    check(n >= 2, "gnp needs n >= 2")?;
    check((0.0..=1.0).contains(&p), "gnp needs 0 <= p <= 1")?;
    check(max_weight >= 1, "gnp needs max_weight >= 1")?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::empty(n);
    let w = |rng: &mut StdRng| {
        if max_weight == 1 {
            1
        } else {
            rng.gen_range(1..=max_weight)
        }
    };
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                let wt = w(&mut rng);
                g.add_edge(u, v, wt)?;
            }
        }
    }
    // Connectivity: random permutation path.
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    for pair in perm.windows(2) {
        if !g.has_edge(pair[0], pair[1]) {
            let wt = w(&mut rng);
            g.add_edge(pair[0], pair[1], wt)?;
        }
    }
    Ok(g)
}

/// A path `0 - 1 - ... - (n-1)` with unit weights: maximal diameter, the
/// worst case for hop-bounded exploration.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] unless `n ≥ 2`.
pub fn path(n: usize) -> Result<Graph, GraphError> {
    check(n >= 2, "path needs n >= 2")?;
    Graph::from_unweighted_edges(n, (0..n - 1).map(|v| (v, v + 1)))
}

/// A cycle on `n` nodes with unit weights.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] unless `n ≥ 3`.
pub fn cycle(n: usize) -> Result<Graph, GraphError> {
    check(n >= 3, "cycle needs n >= 3")?;
    Graph::from_unweighted_edges(n, (0..n).map(|v| (v, (v + 1) % n)))
}

/// A star: node `0` adjacent to everyone — the canonical example of a sparse
/// matrix whose square is dense (§1.3).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] unless `n ≥ 2`.
pub fn star(n: usize) -> Result<Graph, GraphError> {
    check(n >= 2, "star needs n >= 2")?;
    Graph::from_unweighted_edges(n, (1..n).map(|v| (0, v)))
}

/// The complete graph with unit weights.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] unless `n ≥ 2`.
pub fn complete(n: usize) -> Result<Graph, GraphError> {
    check(n >= 2, "complete needs n >= 2")?;
    Graph::from_unweighted_edges(n, (0..n).flat_map(|u| ((u + 1)..n).map(move |v| (u, v))))
}

/// A `w × h` grid, unit weights: bounded degree and `Θ(w + h)` diameter —
/// the regime where every shortest path avoids high-degree nodes.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] unless `w, h ≥ 1` and `w·h ≥ 2`.
pub fn grid(w: usize, h: usize) -> Result<Graph, GraphError> {
    grid_weighted(w, h, 1, 0)
}

/// A `w × h` grid with uniform random weights in `1..=max_weight`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] unless `w, h ≥ 1`, `w·h ≥ 2` and
/// `max_weight ≥ 1`.
pub fn grid_weighted(w: usize, h: usize, max_weight: u64, seed: u64) -> Result<Graph, GraphError> {
    check(w >= 1 && h >= 1 && w * h >= 2, "grid needs w*h >= 2")?;
    check(max_weight >= 1, "grid needs max_weight >= 1")?;
    let mut rng = StdRng::seed_from_u64(seed);
    let idx = |x: usize, y: usize| y * w + x;
    let mut g = Graph::empty(w * h);
    for y in 0..h {
        for x in 0..w {
            let wt =
                |rng: &mut StdRng| if max_weight == 1 { 1 } else { rng.gen_range(1..=max_weight) };
            if x + 1 < w {
                let weight = wt(&mut rng);
                g.add_edge(idx(x, y), idx(x + 1, y), weight)?;
            }
            if y + 1 < h {
                let weight = wt(&mut rng);
                g.add_edge(idx(x, y), idx(x, y + 1), weight)?;
            }
        }
    }
    Ok(g)
}

/// A road-network-like workload: a `w × h` grid with random weights in
/// `1..=max_weight`, a sprinkling of diagonal shortcut edges (ring roads /
/// motorways), and a few long-range chords. Bounded degree, high diameter,
/// heterogeneous weights — the regime where landmark-based oracles are
/// interesting and hop-bounded exploration is expensive.
///
/// **Scales to `10⁵`–`10⁶` nodes**: generation is `O(n)` edges into sorted
/// adjacency lists, so a `1000 × 1000` instance builds in seconds and is
/// the standard input for `cc-oracle`'s direct-build benchmarks
/// (`DirectBuilder`, `cc-serve --demo-direct`). The graph is always
/// connected (the grid spans every node), edge weights stay in
/// `1..=max_weight.max(2)` (chords pay at least 2), and the instance is a
/// pure function of `(w, h, max_weight, seed)` — properties pinned by
/// `tests/roadlike_properties.rs` up to `n = 10⁶`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] unless `w, h ≥ 2` and
/// `max_weight ≥ 1`.
pub fn road_like(w: usize, h: usize, max_weight: u64, seed: u64) -> Result<Graph, GraphError> {
    check(w >= 2 && h >= 2, "road_like needs w, h >= 2")?;
    check(max_weight >= 1, "road_like needs max_weight >= 1")?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = grid_weighted(w, h, max_weight, seed)?;
    let idx = |x: usize, y: usize| y * w + x;
    let wt = |rng: &mut StdRng| if max_weight == 1 { 1 } else { rng.gen_range(1..=max_weight) };
    // Diagonal shortcuts on ~15% of cells.
    for y in 0..h - 1 {
        for x in 0..w - 1 {
            if rng.gen_bool(0.15) {
                let weight = wt(&mut rng);
                g.add_edge(idx(x, y), idx(x + 1, y + 1), weight)?;
            }
        }
    }
    // A handful of long chords (motorways): cheap relative to the grid walk.
    let n = w * h;
    for _ in 0..(n / 16).max(1) {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && !g.has_edge(a, b) {
            g.add_edge(a, b, wt(&mut rng).max(2))?;
        }
    }
    Ok(g)
}

/// Barabási–Albert preferential attachment: each new node attaches to
/// `attach` existing nodes with probability proportional to degree. Produces
/// the hub-dominated degree distributions of social networks (the
/// high-degree-path case of §6.3).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] unless `1 ≤ attach < n`.
pub fn barabasi_albert(n: usize, attach: usize, seed: u64) -> Result<Graph, GraphError> {
    check(attach >= 1 && attach < n, "barabasi_albert needs 1 <= attach < n")?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::empty(n);
    // Seed clique on the first attach+1 nodes.
    for u in 0..=attach {
        for v in (u + 1)..=attach {
            g.add_edge(u, v, 1)?;
        }
    }
    // Endpoint pool: each node appears once per incident edge.
    let mut pool: Vec<usize> = Vec::new();
    for (u, v, _) in g.edges() {
        pool.push(u);
        pool.push(v);
    }
    for v in (attach + 1)..n {
        let mut targets = std::collections::BTreeSet::new();
        while targets.len() < attach {
            let t = pool[rng.gen_range(0..pool.len())];
            targets.insert(t);
        }
        for &t in &targets {
            g.add_edge(v, t, 1)?;
            pool.push(v);
            pool.push(t);
        }
    }
    Ok(g)
}

/// `k` cliques of size `size`, consecutive cliques joined by a single bridge
/// edge of weight `bridge_weight`: long shortest paths that must thread
/// specific bottleneck edges.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] unless `k ≥ 1` and `size ≥ 2`.
pub fn cliques_with_bridges(
    k: usize,
    size: usize,
    bridge_weight: u64,
) -> Result<Graph, GraphError> {
    check(k >= 1 && size >= 2, "cliques_with_bridges needs k >= 1, size >= 2")?;
    let n = k * size;
    let mut g = Graph::empty(n);
    for c in 0..k {
        let base = c * size;
        for u in 0..size {
            for v in (u + 1)..size {
                g.add_edge(base + u, base + v, 1)?;
            }
        }
        if c + 1 < k {
            // Bridge from the last node of this clique to the first of the next.
            g.add_edge(base + size - 1, base + size, bridge_weight)?;
        }
    }
    Ok(g)
}

/// The standard suite used by experiments: a name → graph listing spanning
/// the regimes described in the module docs, all with `n` close to the
/// requested size.
///
/// # Errors
///
/// Propagates generator errors (only possible for degenerate `n`).
pub fn standard_suite(n: usize, seed: u64) -> Result<Vec<(String, Graph)>, GraphError> {
    let dense_p = 0.5;
    let sparse_p = (2.0 * (n as f64).ln() / n as f64).min(1.0);
    let side = (n as f64).sqrt().round() as usize;
    Ok(vec![
        ("gnp-sparse".to_owned(), gnp(n, sparse_p, seed)?),
        ("gnp-dense".to_owned(), gnp(n, dense_p, seed.wrapping_add(1))?),
        ("gnp-weighted".to_owned(), gnp_weighted(n, sparse_p, 100, seed.wrapping_add(2))?),
        ("grid".to_owned(), grid(side.max(2), side.max(2))?),
        (
            "grid-weighted".to_owned(),
            grid_weighted(side.max(2), side.max(2), 50, seed.wrapping_add(3))?,
        ),
        ("road-like".to_owned(), road_like(side.max(2), side.max(2), 30, seed.wrapping_add(5))?),
        ("path".to_owned(), path(n)?),
        ("star".to_owned(), star(n)?),
        ("ba".to_owned(), barabasi_albert(n, 3, seed.wrapping_add(4))?),
        ("cliques".to_owned(), cliques_with_bridges((n / 8).max(1), 8, 5)?),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    #[test]
    fn gnp_is_deterministic_and_connected() {
        let a = gnp(32, 0.1, 42).unwrap();
        let b = gnp(32, 0.1, 42).unwrap();
        assert_eq!(a, b);
        let c = gnp(32, 0.1, 43).unwrap();
        assert_ne!(a, c);
        let dist = reference::dijkstra(&a, 0);
        assert!(dist.iter().all(Option::is_some), "gnp must be connected");
    }

    #[test]
    fn gnp_rejects_bad_params() {
        assert!(gnp(1, 0.5, 0).is_err());
        assert!(gnp(8, 1.5, 0).is_err());
        assert!(gnp_weighted(8, 0.5, 0, 0).is_err());
    }

    #[test]
    fn structured_families_have_expected_shape() {
        let p = path(5).unwrap();
        assert_eq!(p.m(), 4);
        let c = cycle(5).unwrap();
        assert_eq!(c.m(), 5);
        let s = star(5).unwrap();
        assert_eq!(s.degree(0), 4);
        let k = complete(5).unwrap();
        assert_eq!(k.m(), 10);
        let g = grid(3, 4).unwrap();
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 4 * 2 - 3 - 4); // 2wh - w - h
    }

    #[test]
    fn road_like_is_connected_deterministic_and_bounded_degree() {
        let a = road_like(8, 8, 30, 5).unwrap();
        let b = road_like(8, 8, 30, 5).unwrap();
        assert_eq!(a, b);
        let dist = reference::dijkstra(&a, 0);
        assert!(dist.iter().all(Option::is_some), "road_like must be connected");
        // The grid skeleton is intact, diagonals only add edges.
        assert!(a.m() >= grid(8, 8).unwrap().m());
        assert!(road_like(1, 8, 30, 0).is_err());
        assert!(road_like(8, 8, 0, 0).is_err());
    }

    #[test]
    fn ba_grows_hubs() {
        let g = barabasi_albert(64, 2, 7).unwrap();
        assert_eq!(g.n(), 64);
        let max_deg = (0..64).map(|v| g.degree(v)).max().unwrap();
        assert!(max_deg >= 8, "preferential attachment should create hubs, got {max_deg}");
        let dist = reference::bfs(&g, 0);
        assert!(dist.iter().all(Option::is_some));
    }

    #[test]
    fn cliques_with_bridges_chains() {
        let g = cliques_with_bridges(3, 4, 5).unwrap();
        assert_eq!(g.n(), 12);
        // Within-clique distance 1; across one bridge 1 + 5 + 1.
        let dist = reference::dijkstra(&g, 0);
        assert_eq!(dist[4], Some(1 + 5));
    }

    #[test]
    fn standard_suite_builds() {
        let suite = standard_suite(32, 1).unwrap();
        assert!(suite.len() >= 8);
        for (name, g) in suite {
            assert!(g.n() >= 2, "{name} too small");
        }
    }
}
