//! Diameter approximation — §7.2 (Claims 34 and 35).
//!
//! The Congested Clique implementation of the Roditty–Vassilevska Williams
//! algorithm \[54\]: for diameter `D = 3h + z` (`z ∈ {0,1,2}`), the returned
//! estimate `D'` satisfies
//!
//! ```text
//! 2h + z ≤ D' ≤ (1+ε)·D     (z ∈ {0,1}; for z = 2: 2h+1 ≤ D')
//! ```
//!
//! in `O(log² n/ε)` rounds — a near-`3/2` approximation. The classical
//! sampling of `Õ(√n)` BFS roots becomes a hitting set of the `N_k` balls
//! plus two MSSP invocations; exact ball distances make the construction
//! deterministic.

use cc_clique::Clique;
use cc_distance::{hitting_set, k_nearest, DistanceError};
use cc_graph::Graph;
use cc_matrix::Dist;

use crate::mssp::mssp;
use crate::run::Stopwatch;
use crate::DiameterRun;

/// §7.2: deterministic near-`3/2` diameter approximation (see module docs
/// for the exact guarantee).
///
/// # Errors
///
/// [`DistanceError::InvalidParameter`] for `ε ≤ 0` or size mismatch;
/// [`DistanceError::Matmul`] if a subroutine fails.
///
/// # Example
///
/// ```
/// use cc_clique::Clique;
/// use cc_core::diameter::diameter_approx;
/// use cc_graph::generators;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::path(30)?; // diameter 29 = 3*9 + 2
/// let mut clique = Clique::new(30);
/// let run = diameter_approx(&mut clique, &g, 0.25)?;
/// assert!(run.estimate >= 19); // 2h + 1
/// assert!(run.estimate as f64 <= 1.25 * 29.0);
/// # Ok(())
/// # }
/// ```
pub fn diameter_approx(
    clique: &mut Clique,
    graph: &Graph,
    epsilon: f64,
) -> Result<DiameterRun, DistanceError> {
    if graph.n() != clique.n() {
        return Err(DistanceError::InvalidParameter {
            what: format!("graph has {} nodes but clique has {}", graph.n(), clique.n()),
        });
    }
    if !epsilon.is_finite() || epsilon <= 0.0 {
        return Err(DistanceError::InvalidParameter {
            what: "diameter approximation needs epsilon > 0".to_owned(),
        });
    }
    let watch = Stopwatch::start(clique);
    let n = graph.n();
    let k = (((n as f64).sqrt() * (n.max(2) as f64).log2()).ceil() as usize).clamp(1, n);

    let estimate = clique.with_phase("diameter", |clique| {
        // (1)–(2): exact balls and their hitting set S.
        let near = k_nearest(clique, graph, k)?;
        let sets: Vec<Vec<usize>> =
            near.iter().map(|r| r.iter().map(|(c, _)| c as usize).collect()).collect();
        let s = hitting_set(clique, &sets, k, 0xD1A)?;

        // (3): (1+ε) distances from everyone to S.
        let run_s = mssp(clique, graph, &s.members, epsilon)?;

        // (4): d(v, p(v)) is exact (p(v) ∈ N_k(v)); broadcast it.
        let dp: Vec<u64> =
            (0..n).map(|v| s.closest_in_row(&near[v]).map_or(0, |(_, a)| a.dist)).collect();
        let dp = clique.all_broadcast(dp)?;

        // (5): w maximises d(w, p(w)); everyone learns N_k(w) (its members
        // announce themselves — one round).
        let w = (0..n).max_by_key(|&v| (dp[v], std::cmp::Reverse(v))).expect("n >= 1");
        clique.charge("announce_nkw", 1);
        let nkw: Vec<usize> = near[w].iter().map(|(c, _)| c as usize).collect();
        let run_w = mssp(clique, graph, &nkw, epsilon)?;

        // (6): the estimate is the largest distance seen; global max via a
        // one-word broadcast.
        let local_max = |dists: &[Vec<Dist>]| -> u64 {
            dists.iter().flat_map(|row| row.iter().filter_map(|d| d.value())).max().unwrap_or(0)
        };
        let est = local_max(&run_s.dist).max(local_max(&run_w.dist));
        clique.all_broadcast(vec![est; n])?;
        Ok::<u64, DistanceError>(est)
    })?;

    let (rounds, report) = watch.stop(clique);
    Ok(DiameterRun { estimate, rounds, report })
}

/// The guarantee of Claim 35 as a predicate: for true diameter `d`, checks
/// `lower(d) ≤ estimate ≤ (1+ε)·d` where `lower(3h+z)` is `2h+z` for
/// `z ∈ {0,1}` and `2h+1` for `z = 2`.
pub fn within_claim35(estimate: u64, true_diameter: u64, epsilon: f64) -> bool {
    let h = true_diameter / 3;
    let z = true_diameter % 3;
    let lower = match z {
        0 => 2 * h,
        1 => 2 * h + 1,
        _ => 2 * h + 1,
    };
    estimate >= lower && (estimate as f64) <= (1.0 + epsilon) * true_diameter as f64 + 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::{generators, reference};

    fn check(g: &Graph, epsilon: f64) -> (u64, u64) {
        let d = reference::diameter(g).expect("graph has edges");
        let mut clique = Clique::new(g.n());
        let run = diameter_approx(&mut clique, g, epsilon).unwrap();
        assert!(
            within_claim35(run.estimate, d, epsilon),
            "estimate {} vs true diameter {d} on {} nodes",
            run.estimate,
            g.n()
        );
        (run.estimate, d)
    }

    #[test]
    fn path_diameter() {
        check(&generators::path(30).unwrap(), 0.25);
    }

    #[test]
    fn cycle_diameter() {
        check(&generators::cycle(32).unwrap(), 0.25);
    }

    #[test]
    fn grid_diameter() {
        check(&generators::grid(6, 5).unwrap(), 0.25);
    }

    #[test]
    fn gnp_diameter() {
        check(&generators::gnp(32, 0.15, 3).unwrap(), 0.25);
    }

    #[test]
    fn weighted_diameter_with_additive_term() {
        // §7.2 remark: for weighted graphs the guarantee degrades by an
        // additive max-weight term: floor(2D/3 - W) <= D' <= (1+eps)D.
        let g = generators::grid_weighted(5, 4, 10, 5).unwrap();
        let d = reference::diameter(&g).unwrap();
        let w = g.max_weight();
        let mut clique = Clique::new(20);
        let run = diameter_approx(&mut clique, &g, 0.25).unwrap();
        assert!(run.estimate as f64 >= (2.0 * d as f64 / 3.0 - w as f64).floor() - 1e-9);
        assert!(run.estimate as f64 <= 1.25 * d as f64 + 1e-9);
    }

    #[test]
    fn star_diameter_small_case() {
        let (est, d) = check(&generators::star(24).unwrap(), 0.25);
        assert_eq!(d, 2);
        assert!(est <= 2);
    }

    #[test]
    fn rejects_bad_parameters() {
        let g = generators::path(8).unwrap();
        let mut clique = Clique::new(8);
        assert!(diameter_approx(&mut clique, &g, 0.0).is_err());
        let mut clique = Clique::new(16);
        assert!(diameter_approx(&mut clique, &g, 0.5).is_err());
    }
}
