//! Multi-source shortest paths — **Theorem 3**.
//!
//! `(1+ε)`-approximate distances from every node to a source set `S`, in
//! `O((|S|^{2/3}/n^{1/3} + log n) · log n/ε)` rounds: build a `(β, ε)`
//! hopset (Theorem 25), then run hop-`β` source detection (Theorem 19) on
//! `G ∪ H`. Polylogarithmic whenever `|S| = Õ(√n)` — the first
//! sub-polynomial algorithm for polynomially many sources.

use cc_clique::Clique;
use cc_distance::{source_detection_all, DistanceError};
use cc_graph::Graph;
use cc_hopset::{build_hopset, Hopset, HopsetConfig};
use cc_matrix::Dist;

use crate::run::Stopwatch;
use crate::MsspRun;

/// **Theorem 3**: `(1+ε)`-approximate distances from all nodes to `sources`.
///
/// # Errors
///
/// * [`DistanceError::InvalidParameter`] for empty/out-of-range sources,
///   `ε ≤ 0`, or graph/clique size mismatch;
/// * [`DistanceError::Matmul`] if a subroutine fails.
///
/// # Example
///
/// ```
/// use cc_clique::Clique;
/// use cc_core::mssp::mssp;
/// use cc_graph::generators;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::gnp_weighted(32, 0.15, 10, 1)?;
/// let mut clique = Clique::new(32);
/// let run = mssp(&mut clique, &g, &[0, 5, 9], 0.25)?;
/// let exact = cc_graph::reference::dijkstra(&g, 0)[7].unwrap();
/// let approx = run.distance(7, 0).unwrap().value().unwrap();
/// assert!(approx as f64 <= 1.25 * exact as f64 && approx >= exact);
/// # Ok(())
/// # }
/// ```
pub fn mssp(
    clique: &mut Clique,
    graph: &Graph,
    sources: &[usize],
    epsilon: f64,
) -> Result<MsspRun, DistanceError> {
    mssp_with_config(clique, graph, sources, HopsetConfig::new(epsilon))
}

/// [`mssp`] with full control over the hopset construction (used by the
/// ablation experiments and by callers that reuse one hopset for several
/// source sets).
///
/// # Errors
///
/// Same as [`mssp`].
pub fn mssp_with_config(
    clique: &mut Clique,
    graph: &Graph,
    sources: &[usize],
    config: HopsetConfig,
) -> Result<MsspRun, DistanceError> {
    let watch = Stopwatch::start(clique);
    let hopset = clique.with_phase("mssp", |cl| build_hopset(cl, graph, config))?;
    mssp_finish(clique, graph, sources, &hopset, watch)
}

/// MSSP on a pre-built hopset: the source-detection half of Theorem 3.
/// Useful when one hopset serves several queries (the APSP algorithms do
/// this implicitly via their own structure).
///
/// # Errors
///
/// Same as [`mssp`].
pub fn mssp_with_hopset(
    clique: &mut Clique,
    graph: &Graph,
    sources: &[usize],
    hopset: &Hopset,
) -> Result<MsspRun, DistanceError> {
    let watch = Stopwatch::start(clique);
    mssp_finish(clique, graph, sources, hopset, watch)
}

fn mssp_finish(
    clique: &mut Clique,
    graph: &Graph,
    sources: &[usize],
    hopset: &Hopset,
    watch: Stopwatch,
) -> Result<MsspRun, DistanceError> {
    let union = hopset.union_with(graph);
    let rows =
        clique.with_phase("mssp", |cl| source_detection_all(cl, &union, sources, hopset.beta))?;
    let dist: Vec<Vec<Dist>> = rows
        .iter()
        .map(|row| {
            sources.iter().map(|&s| row.get(s as u32).map_or(Dist::INF, |a| a.to_dist())).collect()
        })
        .collect();
    let (rounds, report) = watch.stop(clique);
    Ok(MsspRun::new(sources.to_vec(), dist, rounds, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::{generators, reference};

    fn check_stretch(g: &Graph, sources: &[usize], epsilon: f64) -> u64 {
        let mut clique = Clique::new(g.n());
        let run = mssp(&mut clique, g, sources, epsilon).unwrap();
        for (i, &s) in sources.iter().enumerate() {
            let exact = reference::dijkstra(g, s);
            for v in 0..g.n() {
                match (exact[v], run.dist[v][i].value()) {
                    (Some(d), Some(est)) => {
                        assert!(est >= d, "underestimate {est} < {d} for ({v},{s})");
                        assert!(
                            est as f64 <= (1.0 + epsilon) * d as f64 + 1e-9,
                            "stretch violated: {est} > (1+{epsilon})*{d} for ({v},{s})"
                        );
                    }
                    (None, None) => {}
                    (d, est) => panic!("reachability mismatch for ({v},{s}): {d:?} vs {est:?}"),
                }
            }
        }
        run.rounds
    }

    #[test]
    fn single_source_on_weighted_gnp() {
        let g = generators::gnp_weighted(32, 0.12, 40, 2).unwrap();
        check_stretch(&g, &[0], 0.5);
    }

    #[test]
    fn many_sources_on_weighted_gnp() {
        let g = generators::gnp_weighted(32, 0.12, 40, 3).unwrap();
        let sources: Vec<usize> = (0..8).collect();
        check_stretch(&g, &sources, 0.25);
    }

    #[test]
    fn high_diameter_weighted_grid() {
        let g = generators::grid_weighted(6, 5, 30, 4).unwrap();
        check_stretch(&g, &[0, 29], 0.5);
    }

    #[test]
    fn path_needs_real_hopset_shortcuts() {
        let g = generators::path(48).unwrap();
        check_stretch(&g, &[0], 0.5);
    }

    #[test]
    fn disconnected_sources_report_infinity() {
        let g = Graph::from_edges(8, [(0, 1, 1), (2, 3, 1)]).unwrap();
        let mut clique = Clique::new(8);
        let run = mssp(&mut clique, &g, &[0], 0.5).unwrap();
        assert_eq!(run.dist[1][0].value(), Some(1));
        assert_eq!(run.dist[2][0], Dist::INF);
    }

    #[test]
    fn reusing_a_hopset_is_cheaper() {
        let g = generators::gnp_weighted(32, 0.15, 20, 5).unwrap();
        let mut clique = Clique::new(32);
        let hopset = cc_hopset::build_hopset(&mut clique, &g, HopsetConfig::new(0.5)).unwrap();
        let build_rounds = clique.rounds();
        let run = mssp_with_hopset(&mut clique, &g, &[1, 2], &hopset).unwrap();
        assert!(run.rounds < build_rounds, "query should be cheaper than build");
    }

    #[test]
    fn rejects_bad_parameters() {
        let g = generators::path(8).unwrap();
        let mut clique = Clique::new(8);
        assert!(mssp(&mut clique, &g, &[], 0.5).is_err());
        assert!(mssp(&mut clique, &g, &[9], 0.5).is_err());
        assert!(mssp(&mut clique, &g, &[0], 0.0).is_err());
    }
}
