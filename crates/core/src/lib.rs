//! # `cc-core`: fast approximate shortest paths in the Congested Clique
//!
//! The headline algorithms of *Fast Approximate Shortest Paths in the
//! Congested Clique* (Censor-Hillel, Dory, Korhonen, Leitersdorf;
//! PODC 2019), assembled from the substrates in [`cc_matmul`],
//! [`cc_distance`] and [`cc_hopset`]:
//!
//! | API | Paper claim | Rounds |
//! |---|---|---|
//! | [`mssp::mssp`] | Theorem 3: `(1+ε)` multi-source shortest paths | `O((|S|^{2/3}/n^{1/3} + log n)·log n/ε)` |
//! | [`apsp::weighted_3eps`] | §6.1: `(3+ε)` weighted APSP | `O(log² n/ε)` |
//! | [`apsp::weighted_2eps`] | Theorem 28: `(2+ε, (1+ε)W)` weighted APSP | `O(log² n/ε)` |
//! | [`apsp::unweighted_2eps`] | Theorem 2/31: `(2+ε)` unweighted APSP | `O(log² n/ε)` |
//! | [`sssp::exact_sssp`] | Theorem 33: exact weighted SSSP | `Õ(n^{1/6})` |
//! | [`diameter::diameter_approx`] | §7.2: near-`3/2` diameter approximation | `O(log² n/ε)` |
//!
//! Baselines for the experimental comparisons live in [`baselines`]:
//! distributed Bellman-Ford (`O(SPD)` rounds) and exact APSP by dense
//! iterated squaring (`Õ(n^{1/3})` rounds, \[13\]).
//!
//! Every algorithm returns its result together with a
//! [`cc_clique::RoundReport`] delta so experiments can compare measured
//! rounds against the paper's bounds; [`stretch`] computes approximation
//! quality against the sequential ground truth.
//!
//! Unsafe code is forbidden (`#![forbid(unsafe_code)]`), as across the
//! whole workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Distributed algorithms index many parallel per-node vectors by NodeId;
// iterator zips would obscure which node each access belongs to.
#![allow(clippy::needless_range_loop)]

pub mod apsp;
pub mod baselines;
pub mod diameter;
pub mod mssp;
pub mod paths;
pub mod sssp;
pub mod stretch;

mod run;

pub use run::{ApspRun, DiameterRun, MsspRun, SsspRun};

/// The error type shared by all shortest-path algorithms (re-exported from
/// [`cc_distance`]).
pub use cc_distance::DistanceError;
