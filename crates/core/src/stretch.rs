//! Approximation-quality measurements against sequential ground truth.
//!
//! Used by tests (to enforce the theorems' stretch guarantees) and by the
//! experiment harness (to report empirical stretch distributions).

use cc_matrix::Dist;

/// The largest ratio `estimate / exact` over all connected pairs (`1.0` if
/// there are none).
///
/// # Panics
///
/// Panics if a pair is reachable exactly but the estimate is infinite, or
/// the estimate underestimates the true distance — both indicate an
/// algorithmic soundness bug, not a quality issue.
pub fn max_stretch(est: &[Vec<Dist>], exact: &[Vec<Option<u64>>]) -> f64 {
    fold_stretch(est, exact, 1.0, f64::max)
}

/// The mean ratio `estimate / exact` over connected pairs with `d > 0`.
pub fn mean_stretch(est: &[Vec<Dist>], exact: &[Vec<Option<u64>>]) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for_each_ratio(est, exact, |r| {
        sum += r;
        count += 1;
    });
    if count == 0 {
        1.0
    } else {
        sum / count as f64
    }
}

/// Checks soundness: estimates never underestimate, and every reachable
/// pair has a finite estimate.
///
/// # Panics
///
/// Panics with a descriptive message on the first violation.
pub fn assert_sound(est: &[Vec<Dist>], exact: &[Vec<Option<u64>>]) {
    for (u, row) in exact.iter().enumerate() {
        for (v, &d) in row.iter().enumerate() {
            match (d, est[u][v].value()) {
                (Some(d), Some(e)) => {
                    assert!(e >= d, "estimate {e} underestimates exact {d} for pair ({u},{v})");
                }
                (Some(d), None) => panic!("pair ({u},{v}) reachable at {d} but estimate is inf"),
                (None, Some(e)) => {
                    panic!("pair ({u},{v}) unreachable but estimate claims {e}")
                }
                (None, None) => {}
            }
        }
    }
}

fn fold_stretch(
    est: &[Vec<Dist>],
    exact: &[Vec<Option<u64>>],
    init: f64,
    mut f: impl FnMut(f64, f64) -> f64,
) -> f64 {
    let mut acc = init;
    for_each_ratio(est, exact, |r| acc = f(acc, r));
    acc
}

fn for_each_ratio(est: &[Vec<Dist>], exact: &[Vec<Option<u64>>], mut f: impl FnMut(f64)) {
    for (u, row) in exact.iter().enumerate() {
        for (v, &d) in row.iter().enumerate() {
            if let Some(d) = d {
                if d > 0 {
                    let e = est[u][v]
                        .value()
                        .unwrap_or_else(|| panic!("pair ({u},{v}) reachable but estimate inf"));
                    assert!(e >= d, "estimate {e} underestimates {d} for ({u},{v})");
                    f(e as f64 / d as f64);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(vals: &[&[u64]]) -> Vec<Vec<Dist>> {
        vals.iter()
            .map(|row| {
                row.iter().map(|&v| if v == u64::MAX { Dist::INF } else { Dist::fin(v) }).collect()
            })
            .collect()
    }

    #[test]
    fn computes_max_and_mean() {
        let e = est(&[&[0, 2], &[2, 0]]);
        let exact = vec![vec![Some(0), Some(1)], vec![Some(1), Some(0)]];
        assert_eq!(max_stretch(&e, &exact), 2.0);
        assert_eq!(mean_stretch(&e, &exact), 2.0);
        assert_sound(&e, &exact);
    }

    #[test]
    fn ignores_unreachable_pairs() {
        let e = est(&[&[0, u64::MAX], &[u64::MAX, 0]]);
        let exact = vec![vec![Some(0), None], vec![None, Some(0)]];
        assert_eq!(max_stretch(&e, &exact), 1.0);
        assert_sound(&e, &exact);
    }

    #[test]
    #[should_panic(expected = "underestimates")]
    fn detects_underestimates() {
        let e = est(&[&[0, 1], &[1, 0]]);
        let exact = vec![vec![Some(0), Some(5)], vec![Some(5), Some(0)]];
        assert_sound(&e, &exact);
    }

    #[test]
    #[should_panic(expected = "reachable")]
    fn detects_missing_estimates() {
        let e = est(&[&[0, u64::MAX], &[u64::MAX, 0]]);
        let exact = vec![vec![Some(0), Some(5)], vec![Some(5), Some(0)]];
        assert_sound(&e, &exact);
    }
}
