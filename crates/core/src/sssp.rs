//! Exact single-source shortest paths — **Theorem 33** — plus the
//! distributed Bellman-Ford it accelerates.
//!
//! The `Õ(n^{1/6})`-round algorithm (§7.1): compute the `k = n^{5/6}`
//! nearest nodes of every node (Theorem 18, `Õ(k/n^{2/3}) = Õ(n^{1/6})`
//! rounds), add the **k-shortcut edges** `{(v,u,d(v,u)) : u ∈ N_k(v)}`, and
//! run Bellman-Ford on the shortcut graph. By Lemma 32 (\[48\], Theorem 3.10)
//! the shortcut graph's shortest-path diameter is below `4n/k = 4n^{1/6}`,
//! so Bellman-Ford converges in `O(n^{1/6})` rounds — improving the
//! previous `Õ(n^{1/3})` bound.

use cc_clique::Clique;
use cc_distance::{k_nearest, DistanceError};
use cc_graph::Graph;
use cc_matrix::Dist;

use crate::run::Stopwatch;
use crate::SsspRun;

fn validate(clique: &Clique, graph: &Graph, source: usize) -> Result<(), DistanceError> {
    if graph.n() != clique.n() {
        return Err(DistanceError::InvalidParameter {
            what: format!("graph has {} nodes but clique has {}", graph.n(), clique.n()),
        });
    }
    if source >= graph.n() {
        return Err(DistanceError::InvalidParameter {
            what: format!("source {source} outside 0..{}", graph.n()),
        });
    }
    Ok(())
}

/// Distributed Bellman-Ford: exact SSSP in `O(SPD)` rounds (one broadcast
/// round per iteration, where `SPD` is the shortest-path diameter). The
/// baseline Theorem 33 improves on for high-`SPD` graphs.
///
/// `max_iterations` caps the loop (`None` = the trivial bound `n`).
///
/// # Errors
///
/// [`DistanceError::InvalidParameter`] for a bad source or size mismatch;
/// [`DistanceError::Clique`] on malformed communication.
pub fn bellman_ford(
    clique: &mut Clique,
    graph: &Graph,
    source: usize,
    max_iterations: Option<usize>,
) -> Result<SsspRun, DistanceError> {
    validate(clique, graph, source)?;
    let watch = Stopwatch::start(clique);
    let dist = clique.with_phase("bellman_ford", |clique| {
        bf_loop(clique, graph, source, max_iterations.unwrap_or(graph.n()))
    })?;
    let (rounds, report) = watch.stop(clique);
    Ok(SsspRun { source, dist, rounds, report })
}

/// The Bellman-Ford loop on an explicit graph: every iteration, all nodes
/// broadcast their tentative distance (one word, one round) and relax over
/// their incident edges. Stops at convergence or after `max_iterations`.
fn bf_loop(
    clique: &mut Clique,
    graph: &Graph,
    source: usize,
    max_iterations: usize,
) -> Result<Vec<Dist>, DistanceError> {
    let n = graph.n();
    let mut dist = vec![Dist::INF; n];
    dist[source] = Dist::ZERO;
    for _ in 0..max_iterations {
        let snapshot: Vec<u64> = dist.iter().map(|d| d.raw()).collect();
        let snapshot = clique.all_broadcast(snapshot)?;
        let mut changed = false;
        for v in 0..n {
            for &(u, w) in graph.neighbors(v) {
                // The snapshot carries raw dist words; decode via from_raw
                // so the ∞ encoding lives in one place.
                if Dist::from_raw(snapshot[u]).is_finite() {
                    let cand = Dist::fin(snapshot[u]).checked_add(Dist::fin(w));
                    if cand < dist[v] {
                        dist[v] = cand;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    Ok(dist)
}

/// **Theorem 33**: exact weighted SSSP in `Õ(n^{1/6})` rounds via the
/// `n^{5/6}`-shortcut graph.
///
/// # Errors
///
/// Same as [`bellman_ford`], plus [`DistanceError::Matmul`] from the
/// `k`-nearest subroutine.
///
/// # Example
///
/// ```
/// use cc_clique::Clique;
/// use cc_core::sssp::exact_sssp;
/// use cc_graph::{generators, reference};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::gnp_weighted(32, 0.1, 25, 1)?;
/// let mut clique = Clique::new(32);
/// let run = exact_sssp(&mut clique, &g, 0)?;
/// let exact = reference::dijkstra(&g, 0);
/// for v in 0..32 {
///     assert_eq!(run.dist[v].value(), exact[v]);
/// }
/// # Ok(())
/// # }
/// ```
pub fn exact_sssp(
    clique: &mut Clique,
    graph: &Graph,
    source: usize,
) -> Result<SsspRun, DistanceError> {
    let n = graph.n().max(1);
    let k = ((n as f64).powf(5.0 / 6.0).ceil() as usize).clamp(1, n);
    exact_sssp_with_k(clique, graph, source, k)
}

/// [`exact_sssp`] with an explicit shortcut parameter `k` (the ball size).
///
/// The paper balances the `Õ(k/n^{2/3})`-round ball computation against the
/// `O(n/k)`-round Bellman-Ford tail and lands on `k = n^{5/6}`; this entry
/// point exists for the ablation experiment that sweeps the exponent.
///
/// # Errors
///
/// Same as [`exact_sssp`].
pub fn exact_sssp_with_k(
    clique: &mut Clique,
    graph: &Graph,
    source: usize,
    k: usize,
) -> Result<SsspRun, DistanceError> {
    validate(clique, graph, source)?;
    let watch = Stopwatch::start(clique);
    let n = graph.n();
    let k = k.clamp(1, n);
    let dist = clique.with_phase("exact_sssp", |clique| {
        // k-shortcut graph: exact ball edges contract every shortest path
        // to at most 4n/k shortcut hops (Lemma 32).
        let near = k_nearest(clique, graph, k)?;
        let mut shortcut = graph.clone();
        for (v, row) in near.iter().enumerate() {
            for (u, a) in row.iter() {
                if u as usize != v {
                    shortcut
                        .add_edge(v, u as usize, a.dist)
                        .expect("k-nearest output references valid nodes");
                }
            }
        }
        let spd_bound = (4 * n).div_ceil(k) + 1;
        bf_loop(clique, &shortcut, source, spd_bound.min(n))
    })?;
    let (rounds, report) = watch.stop(clique);
    Ok(SsspRun { source, dist, rounds, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::{generators, reference};

    fn check_exact(g: &Graph, source: usize) -> (u64, u64) {
        let exact = reference::dijkstra(g, source);
        let mut c1 = Clique::new(g.n());
        let bf = bellman_ford(&mut c1, g, source, None).unwrap();
        let mut c2 = Clique::new(g.n());
        let fast = exact_sssp(&mut c2, g, source).unwrap();
        for v in 0..g.n() {
            assert_eq!(bf.dist[v].value(), exact[v], "bellman-ford node {v}");
            assert_eq!(fast.dist[v].value(), exact[v], "exact sssp node {v}");
        }
        (bf.rounds, fast.rounds)
    }

    #[test]
    fn exact_on_weighted_gnp() {
        let g = generators::gnp_weighted(32, 0.15, 40, 6).unwrap();
        check_exact(&g, 0);
    }

    #[test]
    fn exact_on_weighted_grid() {
        let g = generators::grid_weighted(6, 6, 25, 7).unwrap();
        check_exact(&g, 35);
    }

    #[test]
    fn exact_on_path_grows_sublinearly_unlike_bellman_ford() {
        // Path: SPD = n-1, so plain BF needs ~n rounds. The shortcut
        // algorithm pays a large polylog constant (the log W searches inside
        // k-nearest) but grows like n^{1/6}: its round *growth* between two
        // sizes must be a small fraction of BF's. (The absolute crossover
        // happens at larger n and is measured in the E11 experiment.)
        let g_small = generators::path(48).unwrap();
        let g_large = generators::path(96).unwrap();
        let (bf_small, fast_small) = check_exact(&g_small, 0);
        let (bf_large, fast_large) = check_exact(&g_large, 0);
        let bf_growth = bf_large - bf_small;
        let fast_growth = fast_large.saturating_sub(fast_small);
        assert!(bf_growth >= 40, "BF growth should track n, got {bf_growth}");
        assert!(
            fast_growth < 4 * bf_growth,
            "shortcut SSSP growth {fast_growth} should be far below linear (BF grew {bf_growth})"
        );
    }

    #[test]
    fn exact_on_heavy_bridge_chain() {
        let g = generators::cliques_with_bridges(5, 6, 13).unwrap();
        check_exact(&g, 0);
    }

    #[test]
    fn handles_disconnected_graphs() {
        let g = Graph::from_edges(12, (0..5).map(|v| (v, v + 1, 3))).unwrap();
        let mut clique = Clique::new(12);
        let run = exact_sssp(&mut clique, &g, 2).unwrap();
        assert_eq!(run.dist[5].value(), Some(9));
        assert_eq!(run.dist[11], Dist::INF);
    }

    #[test]
    fn bf_iteration_cap_limits_rounds() {
        let g = generators::path(32).unwrap();
        let mut clique = Clique::new(32);
        let run = bellman_ford(&mut clique, &g, 0, Some(5)).unwrap();
        assert!(run.rounds <= 5);
        // Partial results: nodes beyond 5 hops still unreached.
        assert_eq!(run.dist[3].value(), Some(3));
        assert_eq!(run.dist[20], Dist::INF);
    }

    #[test]
    fn rejects_bad_parameters() {
        let g = generators::path(8).unwrap();
        let mut clique = Clique::new(8);
        assert!(exact_sssp(&mut clique, &g, 99).is_err());
        let mut clique = Clique::new(4);
        assert!(bellman_ford(&mut clique, &g, 0, None).is_err());
    }
}
