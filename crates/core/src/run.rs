//! Result types carrying both the computed distances and the round cost.

use cc_clique::{Clique, RoundReport};
use cc_matrix::Dist;

/// Captures the round cost of one algorithm invocation as a delta over the
/// clique's cumulative metrics.
pub(crate) struct Stopwatch {
    rounds_before: u64,
}

impl Stopwatch {
    pub(crate) fn start(clique: &Clique) -> Self {
        Stopwatch { rounds_before: clique.rounds() }
    }

    pub(crate) fn stop(self, clique: &Clique) -> (u64, RoundReport) {
        (clique.rounds() - self.rounds_before, clique.report())
    }
}

/// Result of an all-pairs computation: `dist[u][v]` is the (estimated)
/// distance, `Dist::INF` when unknown/unreachable.
#[derive(Debug, Clone)]
pub struct ApspRun {
    /// The `n × n` distance estimates.
    pub dist: Vec<Vec<Dist>>,
    /// Rounds this invocation charged.
    pub rounds: u64,
    /// Full metrics snapshot at completion (cumulative for the clique).
    pub report: RoundReport,
}

/// Result of a multi-source computation: `dist[v][i]` is the estimated
/// distance from `v` to `sources[i]`.
#[derive(Debug, Clone)]
pub struct MsspRun {
    /// The sources, in the order of the distance columns. Crate-private so
    /// the [`MsspRun::distance`] lookup index can never drift out of sync;
    /// read via [`MsspRun::sources`].
    pub(crate) sources: Vec<usize>,
    /// Per node, distances to each source.
    pub dist: Vec<Vec<Dist>>,
    /// Rounds this invocation charged.
    pub rounds: u64,
    /// Full metrics snapshot at completion.
    pub report: RoundReport,
    /// `(source, column)` pairs sorted by source, so [`MsspRun::distance`]
    /// is an `O(log s)` binary search instead of a linear scan — it sits on
    /// the oracle's landmark-column hot path.
    by_source: Vec<(usize, usize)>,
}

impl MsspRun {
    /// Assembles a run result, building the source-lookup index.
    pub fn new(
        sources: Vec<usize>,
        dist: Vec<Vec<Dist>>,
        rounds: u64,
        report: RoundReport,
    ) -> Self {
        let mut by_source: Vec<(usize, usize)> =
            sources.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        by_source.sort_unstable();
        MsspRun { sources, dist, rounds, report, by_source }
    }

    /// The sources, in the order of the distance columns.
    pub fn sources(&self) -> &[usize] {
        &self.sources
    }

    /// Distance from `v` to `source` (by node id), if `source` is one of the
    /// run's sources. `O(log s)` in the number of sources.
    pub fn distance(&self, v: usize, source: usize) -> Option<Dist> {
        let idx = self
            .by_source
            .binary_search_by_key(&source, |&(s, _)| s)
            .ok()
            .map(|i| self.by_source[i].1)?;
        Some(self.dist[v][idx])
    }
}

/// Result of a single-source computation.
#[derive(Debug, Clone)]
pub struct SsspRun {
    /// The source node.
    pub source: usize,
    /// Distances from the source (`Dist::INF` = unreachable).
    pub dist: Vec<Dist>,
    /// Rounds this invocation charged.
    pub rounds: u64,
    /// Full metrics snapshot at completion.
    pub report: RoundReport,
}

/// Result of a diameter approximation.
#[derive(Debug, Clone)]
pub struct DiameterRun {
    /// The diameter estimate `D'`.
    pub estimate: u64,
    /// Rounds this invocation charged.
    pub rounds: u64,
    /// Full metrics snapshot at completion.
    pub report: RoundReport,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_measures_delta() {
        let mut clique = Clique::new(4);
        clique.charge("warmup", 5);
        let watch = Stopwatch::start(&clique);
        clique.charge("work", 3);
        let (rounds, report) = watch.stop(&clique);
        assert_eq!(rounds, 3);
        assert_eq!(report.rounds, 8);
    }

    #[test]
    fn mssp_run_lookup() {
        let run = MsspRun::new(
            vec![5, 2],
            vec![vec![Dist::fin(1), Dist::fin(9)]; 3],
            0,
            Clique::new(2).report(),
        );
        assert_eq!(run.distance(0, 2), Some(Dist::fin(9)));
        assert_eq!(run.distance(0, 7), None);
    }

    #[test]
    fn mssp_run_lookup_matches_linear_scan_on_many_sources() {
        // Unsorted, gappy source ids: the index must agree with the naive
        // position() scan it replaced, and misses must stay None.
        let sources: Vec<usize> = (0..64).map(|i| (i * 37 + 11) % 101).collect();
        let dist: Vec<Vec<Dist>> =
            (0..4).map(|v| (0..64).map(|i| Dist::fin((v * 64 + i) as u64)).collect()).collect();
        let run = MsspRun::new(sources.clone(), dist.clone(), 0, Clique::new(2).report());
        for v in 0..4 {
            for target in 0..101 {
                let expected = sources.iter().position(|&s| s == target).map(|i| dist[v][i]);
                assert_eq!(run.distance(v, target), expected, "v={v} target={target}");
            }
        }
    }
}
