//! Result types carrying both the computed distances and the round cost.

use cc_clique::{Clique, RoundReport};
use cc_matrix::Dist;

/// Captures the round cost of one algorithm invocation as a delta over the
/// clique's cumulative metrics.
pub(crate) struct Stopwatch {
    rounds_before: u64,
}

impl Stopwatch {
    pub(crate) fn start(clique: &Clique) -> Self {
        Stopwatch { rounds_before: clique.rounds() }
    }

    pub(crate) fn stop(self, clique: &Clique) -> (u64, RoundReport) {
        (clique.rounds() - self.rounds_before, clique.report())
    }
}

/// Result of an all-pairs computation: `dist[u][v]` is the (estimated)
/// distance, `Dist::INF` when unknown/unreachable.
#[derive(Debug, Clone)]
pub struct ApspRun {
    /// The `n × n` distance estimates.
    pub dist: Vec<Vec<Dist>>,
    /// Rounds this invocation charged.
    pub rounds: u64,
    /// Full metrics snapshot at completion (cumulative for the clique).
    pub report: RoundReport,
}

/// Result of a multi-source computation: `dist[v][i]` is the estimated
/// distance from `v` to `sources[i]`.
#[derive(Debug, Clone)]
pub struct MsspRun {
    /// The sources, in the order of the distance columns.
    pub sources: Vec<usize>,
    /// Per node, distances to each source.
    pub dist: Vec<Vec<Dist>>,
    /// Rounds this invocation charged.
    pub rounds: u64,
    /// Full metrics snapshot at completion.
    pub report: RoundReport,
}

impl MsspRun {
    /// Distance from `v` to `source` (by node id), if `source` is one of the
    /// run's sources.
    pub fn distance(&self, v: usize, source: usize) -> Option<Dist> {
        let idx = self.sources.iter().position(|&s| s == source)?;
        Some(self.dist[v][idx])
    }
}

/// Result of a single-source computation.
#[derive(Debug, Clone)]
pub struct SsspRun {
    /// The source node.
    pub source: usize,
    /// Distances from the source (`Dist::INF` = unreachable).
    pub dist: Vec<Dist>,
    /// Rounds this invocation charged.
    pub rounds: u64,
    /// Full metrics snapshot at completion.
    pub report: RoundReport,
}

/// Result of a diameter approximation.
#[derive(Debug, Clone)]
pub struct DiameterRun {
    /// The diameter estimate `D'`.
    pub estimate: u64,
    /// Rounds this invocation charged.
    pub rounds: u64,
    /// Full metrics snapshot at completion.
    pub report: RoundReport,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_measures_delta() {
        let mut clique = Clique::new(4);
        clique.charge("warmup", 5);
        let watch = Stopwatch::start(&clique);
        clique.charge("work", 3);
        let (rounds, report) = watch.stop(&clique);
        assert_eq!(rounds, 3);
        assert_eq!(report.rounds, 8);
    }

    #[test]
    fn mssp_run_lookup() {
        let run = MsspRun {
            sources: vec![5, 2],
            dist: vec![vec![Dist::fin(1), Dist::fin(9)]; 3],
            rounds: 0,
            report: Clique::new(2).report(),
        };
        assert_eq!(run.distance(0, 2), Some(Dist::fin(9)));
        assert_eq!(run.distance(0, 7), None);
    }
}
