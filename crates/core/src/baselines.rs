//! Baselines the paper measures itself against conceptually:
//!
//! * [`exact_apsp_squaring`] — exact APSP by iterated distance-product
//!   squaring with the dense 3D algorithm: `Õ(n^{1/3})` rounds, the
//!   state-of-the-art semiring approach of \[13\] that Theorem 2 undercuts
//!   for approximate answers;
//! * [`spanner_apsp`] — the prior approximation route (§1.1): build a
//!   `(2k-1)`-spanner, have every node learn it entirely, and answer all
//!   queries locally — `Õ(n^{1/k})` rounds, still polynomial for every
//!   constant `k` (which is exactly the gap Theorem 2 closes);
//! * distributed Bellman-Ford lives in
//!   [`crate::sssp::bellman_ford`] (`O(SPD)` rounds).

use cc_clique::{Clique, Envelope};
use cc_distance::DistanceError;
use cc_graph::Graph;
use cc_matrix::{Dist, MinPlus, SparseMatrix};

use crate::run::Stopwatch;
use crate::ApspRun;

/// Exact APSP by `⌈log₂ n⌉` dense distance-product squarings —
/// `Õ(n^{1/3})` rounds (\[13\]). Polynomial but exact; the experiments
/// compare its round growth against the polylogarithmic `(2+ε)`
/// approximation (E9/E10).
///
/// # Errors
///
/// [`DistanceError::InvalidParameter`] on size mismatch;
/// [`DistanceError::Matmul`] if a multiplication fails.
///
/// # Example
///
/// ```
/// use cc_clique::Clique;
/// use cc_core::baselines::exact_apsp_squaring;
/// use cc_graph::{generators, reference};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::gnp_weighted(16, 0.2, 9, 4)?;
/// let mut clique = Clique::new(16);
/// let run = exact_apsp_squaring(&mut clique, &g)?;
/// let exact = reference::all_pairs(&g);
/// assert_eq!(run.dist[0][5].value(), exact[0][5]);
/// # Ok(())
/// # }
/// ```
pub fn exact_apsp_squaring(clique: &mut Clique, graph: &Graph) -> Result<ApspRun, DistanceError> {
    let n = clique.n();
    if graph.n() != n {
        return Err(DistanceError::InvalidParameter {
            what: format!("graph has {} nodes but clique has {n}", graph.n()),
        });
    }
    let watch = Stopwatch::start(clique);
    let dist = clique.with_phase("apsp_squaring", |clique| {
        let mut x = graph.weight_matrix();
        let squarings = (n.max(2) as f64).log2().ceil() as usize;
        for _ in 0..squarings {
            // Undirected distance matrices are symmetric: columns = rows,
            // so the right operand needs no transpose exchange.
            let rows = cc_matmul::dense_multiply::<MinPlus>(clique, x.rows(), x.rows())?;
            x = SparseMatrix::from_rows(rows);
        }
        let mut dist = vec![vec![Dist::INF; n]; n];
        for (v, row) in dist.iter_mut().enumerate() {
            for (u, val) in x.row(v).iter() {
                row[u as usize] = *val;
            }
        }
        Ok::<_, DistanceError>(dist)
    })?;
    let (rounds, report) = watch.stop(clique);
    Ok(ApspRun { dist, rounds, report })
}

/// The classical greedy `(2k-1)`-spanner: process edges by increasing
/// weight, keep an edge iff the spanner so far cannot match it within
/// stretch `2k-1`. Guarantees stretch `≤ 2k-1` and `O(n^{1+1/k})` edges.
fn greedy_spanner(graph: &Graph, k: usize) -> Graph {
    let stretch = (2 * k - 1) as u64;
    let mut edges: Vec<(u64, usize, usize)> = graph.edges().map(|(u, v, w)| (w, u, v)).collect();
    edges.sort_unstable();
    let mut spanner = Graph::empty(graph.n());
    for (w, u, v) in edges {
        // Bounded Dijkstra from u: stop beyond stretch * w.
        let limit = stretch.saturating_mul(w);
        let within = bounded_distance(&spanner, u, v, limit);
        if within.is_none() {
            spanner.add_edge(u, v, w).expect("edges of a valid graph remain valid");
        }
    }
    spanner
}

/// Distance from `src` to `dst` in `g` if it is at most `limit`.
fn bounded_distance(g: &Graph, src: usize, dst: usize, limit: u64) -> Option<u64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut best: Vec<Option<u64>> = vec![None; g.n()];
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0u64, src)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > limit {
            return None;
        }
        if v == dst {
            return Some(d);
        }
        match best[v] {
            Some(b) if b <= d => continue,
            _ => best[v] = Some(d),
        }
        for &(u, w) in g.neighbors(v) {
            let nd = d + w;
            if nd <= limit && best[u].is_none_or(|b| nd < b) {
                heap.push(Reverse((nd, u)));
            }
        }
    }
    None
}

/// The spanner route to approximate APSP (§1.1): a `(2k-1)`-spanner is
/// built (substitution: the deterministic Congested Clique construction of
/// \[52\] is replaced by the classical greedy spanner with the same
/// stretch/size interface, charging the cited polylog construction cost —
/// see DESIGN.md), its `O(n^{1+1/k})` edges are broadcast so every node
/// knows the whole spanner (`Õ(n^{1/k})` rounds — the dominant term), and
/// every node answers all queries locally.
///
/// # Errors
///
/// [`DistanceError::InvalidParameter`] for `k == 0` or size mismatch;
/// [`DistanceError::Clique`] on malformed communication.
///
/// # Example
///
/// ```
/// use cc_clique::Clique;
/// use cc_core::baselines::spanner_apsp;
/// use cc_graph::{generators, reference};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::gnp(32, 0.2, 3)?;
/// let mut clique = Clique::new(32);
/// let run = spanner_apsp(&mut clique, &g, 2)?; // (2k-1) = 3-approximation
/// let exact = reference::all_pairs(&g);
/// let d = exact[0][9].unwrap();
/// assert!(run.dist[0][9].value().unwrap() <= 3 * d);
/// # Ok(())
/// # }
/// ```
pub fn spanner_apsp(
    clique: &mut Clique,
    graph: &Graph,
    k: usize,
) -> Result<ApspRun, DistanceError> {
    let n = clique.n();
    if graph.n() != n {
        return Err(DistanceError::InvalidParameter {
            what: format!("graph has {} nodes but clique has {n}", graph.n()),
        });
    }
    if k == 0 {
        return Err(DistanceError::InvalidParameter {
            what: "spanner stretch parameter k must be at least 1".to_owned(),
        });
    }
    let watch = Stopwatch::start(clique);
    let dist = clique.with_phase("spanner_apsp", |clique| {
        // Construction: charge the cited deterministic construction's
        // polylog round cost; the edge set itself comes from the greedy
        // spanner (same stretch/size interface).
        let log_n = (n.max(2) as f64).log2().ceil() as u64;
        clique.charge("construct", log_n * log_n);
        let spanner = greedy_spanner(graph, k);

        // Dissemination: balance the edges across nodes (one routing step),
        // then broadcast batch by batch until everyone knows the spanner.
        let edges: Vec<(usize, usize, u64)> = spanner.edges().collect();
        let balance: Vec<Envelope<(u64, u64, u64)>> = edges
            .iter()
            .enumerate()
            .map(|(i, &(u, v, w))| Envelope::new(u, i % n, (u as u64, v as u64, w)))
            .collect();
        let held = clique.route(balance)?;
        let batches = held.iter().map(|h| h.len()).max().unwrap_or(0);
        for b in 0..batches {
            let payload: Vec<(u64, u64, u64)> = (0..n)
                .map(|v| held[v].get(b).map_or((u64::MAX, u64::MAX, u64::MAX), |e| e.payload))
                .collect();
            clique.all_broadcast(payload)?;
        }

        // Local queries: every node solves APSP on the spanner it now knows.
        let exact = cc_graph::reference::all_pairs(&spanner);
        let mut dist = vec![vec![Dist::INF; n]; n];
        for u in 0..n {
            for v in 0..n {
                if let Some(d) = exact[u][v] {
                    dist[u][v] = Dist::fin(d);
                }
            }
        }
        Ok::<_, DistanceError>(dist)
    })?;
    let (rounds, report) = watch.stop(clique);
    Ok(ApspRun { dist, rounds, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::{generators, reference};

    fn check_exact(g: &Graph) -> u64 {
        let mut clique = Clique::new(g.n());
        let run = exact_apsp_squaring(&mut clique, g).unwrap();
        let exact = reference::all_pairs(g);
        for u in 0..g.n() {
            for v in 0..g.n() {
                assert_eq!(run.dist[u][v].value(), exact[u][v], "pair ({u},{v})");
            }
        }
        run.rounds
    }

    #[test]
    fn exact_on_weighted_gnp() {
        let g = generators::gnp_weighted(24, 0.2, 15, 8).unwrap();
        check_exact(&g);
    }

    #[test]
    fn exact_on_path() {
        // Path needs the full log n squarings to converge.
        let g = generators::path(17).unwrap();
        check_exact(&g);
    }

    #[test]
    fn exact_on_disconnected() {
        let g = Graph::from_edges(12, [(0, 1, 5), (2, 3, 1), (3, 4, 1)]).unwrap();
        check_exact(&g);
    }

    #[test]
    fn rounds_grow_polynomially_with_n() {
        let r16 = check_exact(&generators::gnp(16, 0.4, 1).unwrap());
        let r48 = check_exact(&generators::gnp(48, 0.4, 1).unwrap());
        assert!(r48 > r16, "dense squaring rounds must grow with n: {r16} vs {r48}");
    }

    #[test]
    fn spanner_apsp_meets_stretch_bound() {
        for k in [1usize, 2, 3] {
            let g = generators::gnp_weighted(32, 0.2, 20, 9).unwrap();
            let mut clique = Clique::new(32);
            let run = spanner_apsp(&mut clique, &g, k).unwrap();
            let exact = reference::all_pairs(&g);
            crate::stretch::assert_sound(&run.dist, &exact);
            let worst = crate::stretch::max_stretch(&run.dist, &exact);
            assert!(
                worst <= (2 * k - 1) as f64 + 1e-9,
                "k={k}: stretch {worst} exceeds {}",
                2 * k - 1
            );
        }
    }

    #[test]
    fn spanner_with_k1_is_exact_and_expensive() {
        // k=1: stretch 1 forces the spanner to keep essentially all edges.
        let g = generators::gnp(24, 0.3, 10).unwrap();
        let mut clique = Clique::new(24);
        let run = spanner_apsp(&mut clique, &g, 1).unwrap();
        let exact = reference::all_pairs(&g);
        for u in 0..24 {
            for v in 0..24 {
                assert_eq!(run.dist[u][v].value(), exact[u][v]);
            }
        }
    }

    #[test]
    fn spanner_sparsification_cuts_dissemination_rounds() {
        // Dense graph: a k=3 spanner has far fewer edges than the graph, so
        // learning it is far cheaper than learning the graph (k=1 spanner).
        let g = generators::gnp(48, 0.5, 11).unwrap();
        let mut c1 = Clique::new(48);
        let r1 = spanner_apsp(&mut c1, &g, 1).unwrap();
        let mut c3 = Clique::new(48);
        let r3 = spanner_apsp(&mut c3, &g, 3).unwrap();
        assert!(
            r3.rounds < r1.rounds,
            "5-spanner ({}) should be cheaper to learn than the full graph ({})",
            r3.rounds,
            r1.rounds
        );
    }

    #[test]
    fn spanner_rejects_bad_parameters() {
        let g = generators::path(8).unwrap();
        let mut clique = Clique::new(8);
        assert!(spanner_apsp(&mut clique, &g, 0).is_err());
        let mut clique = Clique::new(16);
        assert!(spanner_apsp(&mut clique, &g, 2).is_err());
    }
}
