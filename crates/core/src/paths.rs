//! Shortest *paths* (not just distances) via witnessed squaring — the
//! "Recovering paths" extension of §3.1.
//!
//! Iterated squaring over the witness-tracking semiring records, for every
//! pair and every power `W^{2^ℓ}`, a **midpoint** of an optimal
//! hop-bounded path. Recursing on midpoints reconstructs a full shortest
//! path with *local* computation only — the distributed part is the same
//! `⌈log₂ n⌉` squarings as the exact-APSP baseline.

use cc_clique::Clique;
use cc_distance::{product_with_witnesses, DistanceError};
use cc_graph::Graph;
use cc_matrix::{Dist, SparseRow, WitnessedDist};

use crate::run::Stopwatch;

/// The witnessed power tables `W^{2^ℓ}`, supporting distance queries and
/// shortest-path reconstruction.
#[derive(Debug, Clone)]
pub struct ApspPaths {
    levels: Vec<Vec<SparseRow<WitnessedDist>>>,
    /// Rounds charged to build the tables.
    pub rounds: u64,
}

impl ApspPaths {
    /// The exact distance from `u` to `v`, if connected.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn distance(&self, u: usize, v: usize) -> Option<u64> {
        let top = self.levels.last().expect("at least one level");
        if u == v {
            return Some(0);
        }
        top[u].get(v as u32).map(|wd| wd.dist)
    }

    /// A shortest `u`–`v` path (node sequence including both endpoints), or
    /// `None` if disconnected. Purely local computation on the tables.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn path(&self, u: usize, v: usize) -> Option<Vec<usize>> {
        if u == v {
            return Some(vec![u]);
        }
        self.distance(u, v)?;
        let mut nodes = Vec::new();
        nodes.push(u);
        self.expand(self.levels.len() - 1, u, v, &mut nodes);
        Some(nodes)
    }

    /// Appends the interior of an optimal `u`–`v` path at `level`, plus `v`.
    fn expand(&self, level: usize, u: usize, v: usize, out: &mut Vec<usize>) {
        if u == v {
            return;
        }
        let entry = self.levels[level][u]
            .get(v as u32)
            .copied()
            .expect("recursion stays within recorded reachability");
        match (level, entry.witness()) {
            (0, _) => out.push(v),    // a direct edge of W
            (_, None) => out.push(v), // value inherited from a single edge
            (_, Some(w)) if w == u || w == v => {
                // Degenerate midpoint: the value already existed one level
                // down (identity-diagonal product); recurse there directly.
                self.expand(level - 1, u, v, out);
            }
            (_, Some(w)) => {
                self.expand(level - 1, u, w, out);
                self.expand(level - 1, w, v, out);
            }
        }
    }
}

/// Builds exact all-pairs shortest **paths**: `⌈log₂ n⌉` witnessed
/// squarings of the weight matrix (each a Theorem 8 product over the
/// witness semiring), after which every node can answer distance *and*
/// route queries for its row locally.
///
/// # Errors
///
/// [`DistanceError::InvalidParameter`] on size mismatch;
/// [`DistanceError::Matmul`] if a product fails.
///
/// # Example
///
/// ```
/// use cc_clique::Clique;
/// use cc_core::paths::exact_apsp_paths;
/// use cc_graph::generators;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::path(8)?;
/// let mut clique = Clique::new(8);
/// let tables = exact_apsp_paths(&mut clique, &g)?;
/// assert_eq!(tables.path(0, 3), Some(vec![0, 1, 2, 3]));
/// # Ok(())
/// # }
/// ```
pub fn exact_apsp_paths(clique: &mut Clique, graph: &Graph) -> Result<ApspPaths, DistanceError> {
    let n = clique.n();
    if graph.n() != n {
        return Err(DistanceError::InvalidParameter {
            what: format!("graph has {} nodes but clique has {n}", graph.n()),
        });
    }
    let watch = Stopwatch::start(clique);
    let levels = clique.with_phase("apsp_paths", |clique| {
        let w = graph.weight_matrix();
        let mut current: Vec<SparseRow<WitnessedDist>> = w
            .rows()
            .iter()
            .map(|row| {
                SparseRow::from_sorted(
                    row.iter()
                        .map(|(c, d)| {
                            (c, WitnessedDist { dist: d.value().expect("finite"), via: u32::MAX })
                        })
                        .collect(),
                )
            })
            .collect();
        let mut levels = vec![current.clone()];
        let squarings = (n.max(2) as f64).log2().ceil() as usize;
        for _ in 0..squarings {
            // Project to plain distances, square with witnesses.
            let plain: Vec<SparseRow<Dist>> = current
                .iter()
                .map(|row| {
                    SparseRow::from_sorted(row.iter().map(|(c, wd)| (c, wd.to_dist())).collect())
                })
                .collect();
            // Distance matrices of undirected graphs are symmetric, so the
            // column layout of the right operand equals the row layout.
            let next = product_with_witnesses(clique, &plain, &plain, n)?;
            current = next;
            levels.push(current.clone());
        }
        Ok::<_, DistanceError>(levels)
    })?;
    let (rounds, _) = watch.stop(clique);
    Ok(ApspPaths { levels, rounds })
}

/// Checks that `path` is a real walk in `graph` from `u` to `v` with total
/// weight `expected` — the validation predicate used by tests and examples.
pub fn is_shortest_path(graph: &Graph, path: &[usize], u: usize, v: usize, expected: u64) -> bool {
    if path.first() != Some(&u) || path.last() != Some(&v) {
        return false;
    }
    let mut total = 0u64;
    for pair in path.windows(2) {
        match graph.weight(pair[0], pair[1]) {
            Some(w) => total += w,
            None => return false,
        }
    }
    total == expected
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::{generators, reference};

    fn check_all_paths(g: &Graph) {
        let mut clique = Clique::new(g.n());
        let tables = exact_apsp_paths(&mut clique, g).unwrap();
        let exact = reference::all_pairs(g);
        for u in 0..g.n() {
            for v in 0..g.n() {
                assert_eq!(tables.distance(u, v), exact[u][v], "distance ({u},{v})");
                match exact[u][v] {
                    Some(d) => {
                        let path = tables.path(u, v).expect("connected pair has a path");
                        assert!(
                            is_shortest_path(g, &path, u, v, d),
                            "invalid path {path:?} for ({u},{v}), d={d}"
                        );
                    }
                    None => assert!(tables.path(u, v).is_none()),
                }
            }
        }
    }

    #[test]
    fn paths_on_weighted_gnp() {
        check_all_paths(&generators::gnp_weighted(20, 0.15, 30, 3).unwrap());
    }

    #[test]
    fn paths_on_path_graph() {
        check_all_paths(&generators::path(17).unwrap());
    }

    #[test]
    fn paths_on_weighted_grid() {
        check_all_paths(&generators::grid_weighted(4, 5, 9, 4).unwrap());
    }

    #[test]
    fn paths_on_disconnected_graph() {
        let g = Graph::from_edges(10, [(0, 1, 2), (1, 2, 2), (4, 5, 1)]).unwrap();
        check_all_paths(&g);
    }

    #[test]
    fn paths_prefer_light_detours_over_heavy_edges() {
        // Direct heavy edge 0-3 (10) vs light detour 0-1-2-3 (3).
        let g = Graph::from_edges(4, [(0, 3, 10), (0, 1, 1), (1, 2, 1), (2, 3, 1)]).unwrap();
        let mut clique = Clique::new(4);
        let tables = exact_apsp_paths(&mut clique, &g).unwrap();
        assert_eq!(tables.path(0, 3), Some(vec![0, 1, 2, 3]));
        assert_eq!(tables.distance(0, 3), Some(3));
    }

    #[test]
    fn trivial_and_self_paths() {
        let g = generators::star(6).unwrap();
        let mut clique = Clique::new(6);
        let tables = exact_apsp_paths(&mut clique, &g).unwrap();
        assert_eq!(tables.path(2, 2), Some(vec![2]));
        assert_eq!(tables.path(1, 5), Some(vec![1, 0, 5]));
    }
}
