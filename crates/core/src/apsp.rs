//! All-pairs shortest path approximations — §6 of the paper.
//!
//! Three deterministic algorithms, all polylogarithmic:
//!
//! * [`weighted_3eps`] — §6.1: `(3+ε)` for weighted graphs. Every node
//!   learns exact distances to its `√n` nearest, a hitting set `A` of the
//!   `N_k` balls becomes a landmark set, MSSP provides `(1+ε)` distances to
//!   `A`, and the estimate routes through the closest landmark `p(u)`.
//! * [`weighted_2eps`] — **Theorem 28**: `(2+ε, (1+ε)W)` for weighted
//!   graphs, where the additive term is the heaviest edge on a shortest
//!   path. Adds the distance-through-sets combination over the `N_k` balls,
//!   which catches shortest paths whose midpoint lies in both balls.
//! * [`unweighted_2eps`] — **Theorem 2/31**: `(2+ε)` for unweighted graphs.
//!   Splits into paths containing a high-degree node (covered by a
//!   hitting set of the big neighbourhoods + MSSP) and paths within the
//!   low-degree subgraph `G'` (covered by `n^{1/4}`-balls, a second
//!   sparser-graph MSSP from `Õ(n^{3/4})` sources — affordable precisely
//!   because `G'` is sparse — and a 3-hop matrix product for the
//!   ball–edge–ball case).

use cc_clique::{Clique, Envelope};
use cc_distance::{distance_through_sets, hitting_set, k_nearest, DistanceError, HittingSet};
use cc_graph::Graph;
use cc_matrix::{AugDist, Dist, MinPlus, SparseRow};

use crate::mssp::mssp;
use crate::run::Stopwatch;
use crate::ApspRun;

/// Dense estimate matrix: `est[u][v]`, `INF` = unknown.
struct Estimates {
    d: Vec<Vec<Dist>>,
}

impl Estimates {
    fn from_graph(graph: &Graph) -> Self {
        let n = graph.n();
        let mut d = vec![vec![Dist::INF; n]; n];
        for (v, row) in d.iter_mut().enumerate() {
            row[v] = Dist::ZERO;
        }
        for (u, v, w) in graph.edges() {
            d[u][v] = Dist::fin(w);
            d[v][u] = Dist::fin(w);
        }
        Estimates { d }
    }

    /// Symmetric min-update.
    fn improve(&mut self, u: usize, v: usize, cand: Dist) {
        if cand < self.d[u][v] {
            self.d[u][v] = cand;
            self.d[v][u] = cand;
        }
    }
}

/// Exact-ball phase shared by all APSP variants: `k`-nearest distances,
/// counterpart notification (each `v` tells `u ∈ N_k(v)` the exact
/// distance, one routing step), and the per-node ball sets.
fn ball_phase(
    clique: &mut Clique,
    graph: &Graph,
    k: usize,
    est: &mut Estimates,
) -> Result<Vec<SparseRow<AugDist>>, DistanceError> {
    let near = k_nearest(clique, graph, k)?;
    let mut msgs = Vec::new();
    for (v, row) in near.iter().enumerate() {
        for (u, a) in row.iter() {
            est.improve(v, u as usize, a.to_dist());
            if u as usize != v {
                msgs.push(Envelope::new(v, u as usize, a.dist));
            }
        }
    }
    clique.with_phase("ball_notify", |cl| cl.route(msgs))?;
    Ok(near)
}

/// Through-sets phase: combine exact ball distances into
/// `min_{w ∈ N(u) ∩ N(v)} d(u,w)+d(w,v)` estimates (Theorem 20).
fn through_balls(
    clique: &mut Clique,
    near: &[SparseRow<AugDist>],
    est: &mut Estimates,
) -> Result<(), DistanceError> {
    let sets: Vec<Vec<(usize, Dist)>> = near
        .iter()
        .map(|row| row.iter().map(|(c, a)| (c as usize, a.to_dist())).collect())
        .collect();
    let rows = distance_through_sets(clique, &sets)?;
    for (v, row) in rows.iter().enumerate() {
        for (u, d) in row.iter() {
            est.improve(v, u as usize, *d);
        }
    }
    Ok(())
}

/// Landmark phase: `(1+ε)` MSSP from the hitting set, broadcast of
/// `(p(v), d(v, p(v)))`, and the two-sided landmark combination
/// `δ(u,v) ← min(d(u,p(u)) + d̃(p(u),v), d(v,p(v)) + d̃(p(v),u))`.
fn landmark_phase(
    clique: &mut Clique,
    graph: &Graph,
    near: &[SparseRow<AugDist>],
    landmarks: &HittingSet,
    epsilon: f64,
    est: &mut Estimates,
) -> Result<(), DistanceError> {
    let n = graph.n();
    if landmarks.is_empty() {
        return Ok(());
    }
    let run = mssp(clique, graph, &landmarks.members, epsilon)?;
    for v in 0..n {
        for (i, &a) in run.sources.iter().enumerate() {
            est.improve(v, a, run.dist[v][i]);
        }
    }
    // p(v) and d(v, p(v)): 2 words per node, one all-broadcast. A node with
    // no landmark in its row broadcasts `NO_LANDMARK` (landmark ids are
    // `< n`, so the marker cannot collide).
    const NO_LANDMARK: u64 = u64::MAX;
    let pinfo: Vec<(u64, u64)> = (0..n)
        .map(|v| match landmarks.closest_in_row(&near[v]) {
            Some((p, a)) => (p as u64, a.dist),
            None => (NO_LANDMARK, NO_LANDMARK),
        })
        .collect();
    let pinfo = clique.with_phase("landmark_bcast", |cl| cl.all_broadcast(pinfo))?;
    let src_index = |a: usize| run.sources.iter().position(|&s| s == a);
    for v in 0..n {
        let (p, dp) = pinfo[v];
        if p == NO_LANDMARK {
            continue;
        }
        let Some(pi) = src_index(p as usize) else { continue };
        for u in 0..n {
            let via = run.dist[u][pi].checked_add(Dist::fin(dp));
            est.improve(u, v, via);
        }
    }
    Ok(())
}

fn validate(clique: &Clique, graph: &Graph, epsilon: f64) -> Result<(), DistanceError> {
    if graph.n() != clique.n() {
        return Err(DistanceError::InvalidParameter {
            what: format!("graph has {} nodes but clique has {}", graph.n(), clique.n()),
        });
    }
    if !epsilon.is_finite() || epsilon <= 0.0 {
        return Err(DistanceError::InvalidParameter { what: "APSP needs epsilon > 0".to_owned() });
    }
    Ok(())
}

/// §6.1: deterministic `(3+ε)`-approximate weighted APSP in
/// `O(log² n/ε)` rounds.
///
/// # Errors
///
/// [`DistanceError::InvalidParameter`] for bad `ε` or size mismatch;
/// [`DistanceError::Matmul`] if a subroutine fails.
pub fn weighted_3eps(
    clique: &mut Clique,
    graph: &Graph,
    epsilon: f64,
) -> Result<ApspRun, DistanceError> {
    validate(clique, graph, epsilon)?;
    let watch = Stopwatch::start(clique);
    let n = graph.n();
    let k = (n as f64).sqrt().ceil() as usize;
    let mut est = Estimates::from_graph(graph);
    clique.with_phase("apsp3", |clique| {
        let near = ball_phase(clique, graph, k, &mut est)?;
        let sets: Vec<Vec<usize>> =
            near.iter().map(|r| r.iter().map(|(c, _)| c as usize).collect()).collect();
        let landmarks = hitting_set(clique, &sets, k, 0xA5)?;
        landmark_phase(clique, graph, &near, &landmarks, epsilon / 2.0, &mut est)
    })?;
    let (rounds, report) = watch.stop(clique);
    Ok(ApspRun { dist: est.d, rounds, report })
}

/// **Theorem 28**: deterministic `(2+ε, (1+ε)W)`-approximate weighted APSP
/// in `O(log² n/ε)` rounds — for every pair, the estimate is at most
/// `(2+ε)·d(u,v) + (1+ε)·W` where `W` is the heaviest edge on a shortest
/// `u–v` path (always at least as good as a `(3+2ε)` approximation).
///
/// # Errors
///
/// Same as [`weighted_3eps`].
///
/// # Example
///
/// ```
/// use cc_clique::Clique;
/// use cc_core::apsp::weighted_2eps;
/// use cc_graph::{generators, reference};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::gnp_weighted(24, 0.2, 10, 1)?;
/// let mut clique = Clique::new(24);
/// let run = weighted_2eps(&mut clique, &g, 0.5)?;
/// let exact = reference::dijkstra(&g, 0)[9].unwrap();
/// let est = run.dist[0][9].value().unwrap();
/// assert!(est >= exact && est as f64 <= 3.0 * exact as f64 + 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn weighted_2eps(
    clique: &mut Clique,
    graph: &Graph,
    epsilon: f64,
) -> Result<ApspRun, DistanceError> {
    validate(clique, graph, epsilon)?;
    let watch = Stopwatch::start(clique);
    let n = graph.n();
    let k = (n as f64).sqrt().ceil() as usize;
    let mut est = Estimates::from_graph(graph);
    clique.with_phase("apsp2w", |clique| {
        let near = ball_phase(clique, graph, k, &mut est)?;
        through_balls(clique, &near, &mut est)?;
        let sets: Vec<Vec<usize>> =
            near.iter().map(|r| r.iter().map(|(c, _)| c as usize).collect()).collect();
        let landmarks = hitting_set(clique, &sets, k, 0xB7)?;
        landmark_phase(clique, graph, &near, &landmarks, epsilon / 2.0, &mut est)
    })?;
    let (rounds, report) = watch.stop(clique);
    Ok(ApspRun { dist: est.d, rounds, report })
}

/// **Theorem 2/31**: deterministic `(2+ε)`-approximate APSP for unweighted
/// graphs in `O(log² n/ε)` rounds.
///
/// # Errors
///
/// As [`weighted_3eps`], plus [`DistanceError::InvalidParameter`] if the
/// graph is weighted.
pub fn unweighted_2eps(
    clique: &mut Clique,
    graph: &Graph,
    epsilon: f64,
) -> Result<ApspRun, DistanceError> {
    validate(clique, graph, epsilon)?;
    if !graph.is_unweighted() {
        return Err(DistanceError::InvalidParameter {
            what: "unweighted_2eps requires an unweighted graph".to_owned(),
        });
    }
    let watch = Stopwatch::start(clique);
    let n = graph.n();
    let k = (n as f64).sqrt().ceil() as usize;
    let eps_in = epsilon / 2.0;
    let mut est = Estimates::from_graph(graph);

    clique.with_phase("apsp2u", |clique| {
        // ---- Phase 1: shortest paths through a high-degree node. ----
        let high_landmarks = HittingSet::for_high_degree(clique, graph, k, 0xC1)?;
        if !high_landmarks.is_empty() {
            let run = mssp(clique, graph, &high_landmarks.members, eps_in)?;
            for v in 0..n {
                for (i, &a) in run.sources.iter().enumerate() {
                    est.improve(v, a, run.dist[v][i]);
                }
            }
            // Distance through A for every pair (Theorem 20 with ρ = |A|).
            let sets: Vec<Vec<(usize, Dist)>> = (0..n)
                .map(|v| {
                    run.sources
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| run.dist[v][*i].is_finite())
                        .map(|(i, &a)| (a, run.dist[v][i]))
                        .collect()
                })
                .collect();
            let rows = distance_through_sets(clique, &sets)?;
            for (v, row) in rows.iter().enumerate() {
                for (u, d) in row.iter() {
                    est.improve(v, u as usize, *d);
                }
            }
        }

        // ---- Phase 2: shortest paths entirely inside the low-degree
        // subgraph G'. ----
        let gp = graph.low_degree_subgraph(k);
        let kp = (n as f64).powf(0.25).ceil() as usize;
        let near = ball_phase(clique, &gp, kp, &mut est)?;
        through_balls(clique, &near, &mut est)?;

        // Hitting set A' over the G' balls only (dropped nodes are covered
        // by phase 1 and contribute empty sets).
        let sets: Vec<Vec<usize>> = (0..n)
            .map(|v| {
                if gp.degree(v) > 0 {
                    near[v].iter().map(|(c, _)| c as usize).collect()
                } else {
                    Vec::new()
                }
            })
            .collect();
        let low_landmarks = hitting_set(clique, &sets, kp, 0xD3)?;
        if !low_landmarks.is_empty() {
            landmark_phase(clique, &gp, &near, &low_landmarks, eps_in, &mut est)?;
        }

        // ---- Phase 3: the ball–edge–ball product M1 · M2 · M3 (line 11):
        // δ'(u,v) = min { d(u,u') + 1 + d(v',v) : u' ∈ N_{k'}(u),
        //                 v' ∈ N_{k'}(v), {u',v'} ∈ E' }. ----
        let m1_rows: Vec<SparseRow<Dist>> = near
            .iter()
            .map(|row| {
                SparseRow::from_entries::<MinPlus>(
                    row.iter().map(|(c, a)| (c, a.to_dist())).collect(),
                )
            })
            .collect();
        let m2 = {
            // G' adjacency without the diagonal: strict edges only.
            let mut m = cc_matrix::SparseMatrix::zeros(n);
            for (u, v, w) in gp.edges() {
                m.set_in::<MinPlus>(u, v, Dist::fin(w));
                m.set_in::<MinPlus>(v, u, Dist::fin(w));
            }
            m
        };
        let x_hint = (kp * k).clamp(1, n);
        // Columns of M2 are its rows (symmetric adjacency).
        let x = cc_matmul::sparse_multiply::<MinPlus>(clique, &m1_rows, m2.rows(), x_hint)?;
        // M3 = M1ᵀ, so column u of M3 is row u of M1: no transpose needed.
        let y = cc_matmul::sparse_multiply::<MinPlus>(clique, &x, &m1_rows, n)?;
        for (u, row) in y.iter().enumerate() {
            for (v, d) in row.iter() {
                est.improve(u, v as usize, *d);
            }
        }
        Ok::<(), DistanceError>(())
    })?;

    let (rounds, report) = watch.stop(clique);
    Ok(ApspRun { dist: est.d, rounds, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stretch;
    use cc_graph::{generators, reference};

    fn check_weighted(g: &Graph, epsilon: f64, bound: f64) -> ApspRun {
        let mut clique = Clique::new(g.n());
        let run = weighted_2eps(&mut clique, g, epsilon).unwrap();
        let exact = reference::all_pairs(g);
        stretch::assert_sound(&run.dist, &exact);
        let worst = stretch::max_stretch(&run.dist, &exact);
        assert!(worst <= bound + 1e-9, "stretch {worst} > {bound} on {} nodes", g.n());
        run
    }

    #[test]
    fn weighted_2eps_on_gnp() {
        let g = generators::gnp_weighted(24, 0.15, 30, 2).unwrap();
        // Guarantee: (2+eps)d + (1+eps)W <= (3+2eps)d always.
        check_weighted(&g, 0.5, 4.0);
    }

    #[test]
    fn weighted_2eps_on_grid() {
        let g = generators::grid_weighted(5, 5, 10, 3).unwrap();
        check_weighted(&g, 0.5, 4.0);
    }

    #[test]
    fn weighted_2eps_additive_term_respects_heaviest_edge() {
        // Clique chain with heavy bridges: the additive (1+eps)W term.
        let g = generators::cliques_with_bridges(4, 6, 12).unwrap();
        let mut clique = Clique::new(g.n());
        let run = weighted_2eps(&mut clique, &g, 0.5).unwrap();
        let exact = reference::all_pairs(&g);
        let heaviest = g.max_weight();
        for u in 0..g.n() {
            for v in 0..g.n() {
                if let Some(d) = exact[u][v] {
                    let e = run.dist[u][v].value().expect("reachable");
                    assert!(e >= d);
                    let bound = 2.5 * d as f64 + 1.5 * heaviest as f64;
                    assert!((e as f64) <= bound + 1e-9, "pair ({u},{v}): {e} > {bound} (d={d})");
                }
            }
        }
    }

    #[test]
    fn weighted_3eps_on_gnp() {
        let g = generators::gnp_weighted(24, 0.2, 20, 5).unwrap();
        let mut clique = Clique::new(24);
        let run = weighted_3eps(&mut clique, &g, 0.5).unwrap();
        let exact = reference::all_pairs(&g);
        stretch::assert_sound(&run.dist, &exact);
        let worst = stretch::max_stretch(&run.dist, &exact);
        assert!(worst <= 3.5 + 1e-9, "stretch {worst}");
    }

    #[test]
    fn weighted_3eps_estimates_are_never_below_2eps_quality() {
        // Sanity: the 2eps algorithm is at least as accurate on average.
        let g = generators::gnp_weighted(24, 0.15, 25, 7).unwrap();
        let mut c3 = Clique::new(24);
        let r3 = weighted_3eps(&mut c3, &g, 0.5).unwrap();
        let mut c2 = Clique::new(24);
        let r2 = weighted_2eps(&mut c2, &g, 0.5).unwrap();
        let exact = reference::all_pairs(&g);
        let m3 = stretch::mean_stretch(&r3.dist, &exact);
        let m2 = stretch::mean_stretch(&r2.dist, &exact);
        assert!(m2 <= m3 + 1e-9, "2eps mean {m2} worse than 3eps mean {m3}");
    }

    #[test]
    fn unweighted_2eps_on_gnp() {
        let g = generators::gnp(24, 0.15, 11).unwrap();
        let mut clique = Clique::new(24);
        let run = unweighted_2eps(&mut clique, &g, 0.5).unwrap();
        let exact = reference::all_pairs(&g);
        stretch::assert_sound(&run.dist, &exact);
        let worst = stretch::max_stretch(&run.dist, &exact);
        assert!(worst <= 2.5 + 1e-9, "stretch {worst}");
    }

    #[test]
    fn unweighted_2eps_on_hub_graph() {
        // Barabási–Albert: hubs force the high-degree phase to matter.
        let g = generators::barabasi_albert(32, 2, 13).unwrap();
        let mut clique = Clique::new(32);
        let run = unweighted_2eps(&mut clique, &g, 0.5).unwrap();
        let exact = reference::all_pairs(&g);
        stretch::assert_sound(&run.dist, &exact);
        assert!(stretch::max_stretch(&run.dist, &exact) <= 2.5 + 1e-9);
    }

    #[test]
    fn unweighted_2eps_on_low_degree_graph() {
        // Grid: no node reaches degree sqrt(n); the G' phase does the work.
        let g = generators::grid(6, 5).unwrap();
        let mut clique = Clique::new(30);
        let run = unweighted_2eps(&mut clique, &g, 0.5).unwrap();
        let exact = reference::all_pairs(&g);
        stretch::assert_sound(&run.dist, &exact);
        assert!(stretch::max_stretch(&run.dist, &exact) <= 2.5 + 1e-9);
    }

    #[test]
    fn unweighted_rejects_weighted_input() {
        let g = generators::gnp_weighted(16, 0.2, 9, 1).unwrap();
        let mut clique = Clique::new(16);
        assert!(unweighted_2eps(&mut clique, &g, 0.5).is_err());
    }

    #[test]
    fn small_distances_are_exact() {
        // Distance-1 pairs are edges (line 1); distance-2 pairs through a
        // common ball/neighbour often come out exact. At minimum, edges.
        let g = generators::gnp(20, 0.2, 21).unwrap();
        let mut clique = Clique::new(20);
        let run = unweighted_2eps(&mut clique, &g, 0.5).unwrap();
        for (u, v, w) in g.edges() {
            assert_eq!(run.dist[u][v].value(), Some(w));
        }
        for v in 0..20 {
            assert_eq!(run.dist[v][v], Dist::ZERO);
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        let g = generators::path(8).unwrap();
        let mut clique = Clique::new(8);
        assert!(weighted_2eps(&mut clique, &g, 0.0).is_err());
        let mut clique = Clique::new(16);
        assert!(weighted_2eps(&mut clique, &g, 0.5).is_err());
    }
}
