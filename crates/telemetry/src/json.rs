//! A tiny JSON writer: correct escaping and nesting with insertion-order
//! preservation, so no endpoint assembles JSON by `format!` string
//! concatenation (where a stray quote in, say, an error message would
//! emit invalid JSON).

use std::fmt::Write as _;

/// Escapes a string for embedding inside JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A JSON value tree. Object members keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float, rendered via Rust's shortest round-trip `Display`
    /// (non-finite values render as `null`).
    F64(f64),
    /// A pre-rendered JSON fragment, trusted verbatim — for numbers that
    /// need a fixed precision like `format!("{:.4}", rate)`.
    Raw(String),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with ordered members.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::U64(v as u64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::I64(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_owned())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<JsonObject> for Json {
    fn from(v: JsonObject) -> Json {
        Json::Obj(v.members)
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Raw(s) => out.push_str(s),
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// An order-preserving JSON object builder.
///
/// ```
/// use cc_telemetry::JsonObject;
/// let mut o = JsonObject::new();
/// o.set("requests", 3u64);
/// o.set("error", "a \"quoted\" path");
/// assert_eq!(o.render(), r#"{"requests":3,"error":"a \"quoted\" path"}"#);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JsonObject {
    members: Vec<(String, Json)>,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> JsonObject {
        JsonObject::default()
    }

    /// Appends a member (keys are not deduplicated; set each key once).
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Self {
        self.members.push((key.to_owned(), value.into()));
        self
    }

    /// Renders the object as compact JSON.
    pub fn render(&self) -> String {
        Json::Obj(self.members.clone()).render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_handles_quotes_backslashes_and_control_chars() {
        let mut o = JsonObject::new();
        o.set("last_reload_error", "bad \"magic\" in C:\\snap\nline2\u{1}");
        assert_eq!(o.render(), r#"{"last_reload_error":"bad \"magic\" in C:\\snap\nline2\u0001"}"#);
    }

    #[test]
    fn nesting_arrays_objects_and_scalars() {
        let mut inner = JsonObject::new();
        inner.set("hits", 10u64).set("rate", Json::Raw("0.9300".into()));
        let mut o = JsonObject::new();
        o.set("cache", inner);
        o.set("shards", vec![1u64, 2, 3]);
        o.set("note", Json::Null);
        o.set("ok", true);
        o.set("neg", -4i64);
        assert_eq!(
            o.render(),
            r#"{"cache":{"hits":10,"rate":0.9300},"shards":[1,2,3],"note":null,"ok":true,"neg":-4}"#
        );
    }

    #[test]
    fn option_maps_to_null_or_value() {
        let mut o = JsonObject::new();
        o.set("a", None::<u64>);
        o.set("b", Some("x"));
        assert_eq!(o.render(), r#"{"a":null,"b":"x"}"#);
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(0.25).render(), "0.25");
    }
}
