//! A fixed-bucket, log₂-scaled histogram over `u64` samples (nanoseconds
//! on the serving path), backed by an atomic bucket array.
//!
//! Bucket layout: bucket `0` covers `[0, 1]`, bucket `i` (for
//! `1 ≤ i ≤ 62`) covers `(2^(i-1), 2^i]`, and the last bucket is the
//! overflow (`+Inf`) bucket covering everything above `2^62` — including
//! the `u64::MAX` infinity sentinel the oracle uses for disconnected
//! pairs. Exact powers of two land in the bucket whose upper bound they
//! equal, so bucket boundaries are exact and a quantile read off a bucket
//! upper bound is within 2× of the true sample value.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets, including the final overflow (`+Inf`) bucket.
pub const BUCKETS: usize = 64;

/// Index of the overflow bucket.
const OVERFLOW: usize = BUCKETS - 1;

/// Upper (inclusive) bound of bucket `i`; the overflow bucket reports
/// `u64::MAX` (rendered as `+Inf` in the Prometheus exposition).
pub(crate) fn bucket_upper_bound(i: usize) -> u64 {
    if i >= OVERFLOW {
        u64::MAX
    } else {
        1u64 << i
    }
}

/// Bucket index for a sample: the smallest `i` with `value ≤ 2^i`, or the
/// overflow bucket for values above `2^62`.
fn bucket_index(value: u64) -> usize {
    if value <= 1 {
        return 0;
    }
    // Bits needed to represent value-1: v in (2^(b-1), 2^b] maps to b.
    let b = (64 - (value - 1).leading_zeros()) as usize;
    b.min(OVERFLOW)
}

/// A lock-free latency histogram with log₂-scaled buckets.
///
/// `record` touches two atomics (bucket + sum) with relaxed ordering and
/// never blocks; snapshots are taken bucket-by-bucket and are therefore
/// only *approximately* consistent under concurrent writes, which is fine
/// for monitoring. A histogram created disabled (see
/// [`Registry::new_disabled`](crate::Registry::new_disabled)) makes
/// `record` a no-op so instrumentation overhead can be measured.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    /// Saturating sum of recorded values (an ∞ sentinel pins it to MAX).
    sum: AtomicU64,
    enabled: bool,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty, enabled histogram.
    pub fn new() -> Histogram {
        Self::with_enabled(true)
    }

    pub(crate) fn with_enabled(enabled: bool) -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            enabled,
        }
    }

    /// Records one sample (typically a duration in nanoseconds).
    pub fn record(&self, value: u64) {
        if !self.enabled {
            return;
        }
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        // Saturating add: one ∞ sentinel must not wrap the running sum.
        let mut cur = self.sum.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(value);
            match self.sum.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Captures the current bucket counts and sum.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistSnapshot { buckets, sum: self.sum.load(Ordering::Relaxed) }
    }
}

/// A point-in-time copy of a [`Histogram`], suitable for quantile math,
/// merging across shards, and rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket counts (not cumulative).
    pub buckets: [u64; BUCKETS],
    /// Saturating sum of recorded values.
    pub sum: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot { buckets: [0; BUCKETS], sum: 0 }
    }
}

impl HistSnapshot {
    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Upper (inclusive) bound of bucket `i`; `u64::MAX` for the overflow
    /// bucket.
    pub fn upper_bound(i: usize) -> u64 {
        bucket_upper_bound(i)
    }

    /// The `q`-quantile (`q` in `[0, 1]`), reported as the upper bound of
    /// the bucket containing that rank — an overestimate by at most 2×.
    /// Returns 0 for an empty histogram; ranks landing in the overflow
    /// bucket report `u64::MAX`.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the requested quantile, 1-based; q=0 means rank 1.
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        u64::MAX
    }

    /// Adds another snapshot's buckets and sum into this one
    /// (saturating), e.g. to aggregate per-shard histograms.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.saturating_add(*b);
        }
        self.sum = self.sum.saturating_add(other.sum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;

    #[test]
    fn bucket_boundaries_are_exact_at_powers_of_two() {
        // 2^i must land in the bucket whose upper bound is 2^i, and
        // 2^i + 1 in the next one.
        for i in 1..62usize {
            let v = 1u64 << i;
            assert_eq!(bucket_index(v), i, "2^{i} belongs to bucket {i}");
            assert_eq!(bucket_index(v + 1), i + 1, "2^{i}+1 spills to bucket {}", i + 1);
            assert!(v <= bucket_upper_bound(i));
            assert!(v > bucket_upper_bound(i - 1) || i == 1);
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
    }

    #[test]
    fn infinity_sentinels_land_in_the_overflow_bucket() {
        let h = Histogram::new();
        h.record(u64::MAX); // the oracle's ∞ sentinel
        h.record(u64::MAX - 1); // MAX_FINITE_DISTANCE
        h.record((1u64 << 62) + 1);
        let snap = h.snapshot();
        assert_eq!(snap.buckets[BUCKETS - 1], 3);
        assert_eq!(snap.count(), 3);
        // The sum saturates instead of wrapping.
        assert_eq!(snap.sum, u64::MAX);
        assert_eq!(snap.quantile(0.5), u64::MAX);
    }

    #[test]
    fn quantiles_read_bucket_upper_bounds() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(100); // bucket ub 128
        }
        for _ in 0..10 {
            h.record(5_000); // bucket ub 8192
        }
        let snap = h.snapshot();
        assert_eq!(snap.quantile(0.5), 128);
        assert_eq!(snap.quantile(0.9), 128);
        assert_eq!(snap.quantile(0.99), 8192);
        assert_eq!(snap.quantile(1.0), 8192);
        // Within-2× guarantee: ub/2 < sample <= ub.
        assert!(snap.quantile(0.5) < 2 * 100);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        assert_eq!(Histogram::new().snapshot().quantile(0.99), 0);
    }

    #[test]
    fn merge_adds_buckets_and_sums() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(3);
        b.record(3);
        b.record(1 << 20);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 3);
        assert_eq!(m.sum, 6 + (1 << 20));
        assert_eq!(m.buckets[bucket_index(3)], 2);
    }

    #[test]
    fn disabled_histogram_records_nothing() {
        let h = Histogram::with_enabled(false);
        h.record(42);
        assert_eq!(h.snapshot().count(), 0);
    }

    proptest! {
        #[test]
        fn quantile_is_monotone_in_q(
            values in prop::collection::vec(0u64..u64::MAX, 1..200),
            qa in 0u32..1001,
            qb in 0u32..1001,
        ) {
            let h = Histogram::new();
            for v in &values {
                h.record(*v);
            }
            let snap = h.snapshot();
            let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
            prop_assert!(
                snap.quantile(lo as f64 / 1000.0) <= snap.quantile(hi as f64 / 1000.0)
            );
        }

        #[test]
        fn every_sample_lands_in_exactly_one_bucket(
            values in prop::collection::vec(0u64..u64::MAX, 0..200),
        ) {
            let h = Histogram::new();
            for v in &values {
                h.record(*v);
            }
            prop_assert_eq!(h.snapshot().count(), values.len() as u64);
        }
    }

    #[test]
    fn concurrent_hammer_loses_no_updates() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 100_000;
        let h = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    // A spread of magnitudes, including the ∞ sentinel.
                    let mut x = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t as u64 + 1);
                    for i in 0..PER_THREAD {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let v = if i % 1000 == 0 { u64::MAX } else { x >> (x % 50) };
                        h.record(v);
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(
            snap.count(),
            THREADS as u64 * PER_THREAD,
            "sum(buckets) must equal the number of records: no lost updates"
        );
    }
}
