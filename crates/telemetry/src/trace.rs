//! Per-phase build tracing for the oracle construction pipeline.
//!
//! The PODC 2019 construction is analyzed in *rounds*, so "make builds
//! cheap" needs per-phase round/wall/message-volume numbers rather than
//! one aggregate. The oracle builder (k-nearest balls → hitting-set
//! landmarks → MSSP columns) and the shard partitioner fill a
//! [`BuildTrace`] with one [`PhaseSpan`] per phase; the trace can then be
//! exported as registry gauges (for `/metrics`), JSON (for benches), or
//! human-readable log lines (for `cc-serve --demo`).

use crate::json::{Json, JsonObject};
use crate::registry::Registry;

/// One instrumented build phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSpan {
    /// Phase name, e.g. `k_nearest_balls`.
    pub name: String,
    /// Wall time spent in the phase, nanoseconds.
    pub wall_ns: u64,
    /// Simulated congested-clique rounds charged to the phase.
    pub rounds: u64,
    /// Messages (envelopes) delivered during the phase.
    pub messages: u64,
    /// Words moved during the phase — the message-volume estimate.
    pub words: u64,
}

/// An ordered list of [`PhaseSpan`]s describing one build.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BuildTrace {
    spans: Vec<PhaseSpan>,
}

impl BuildTrace {
    /// An empty trace.
    pub fn new() -> BuildTrace {
        BuildTrace::default()
    }

    /// Appends a completed phase.
    pub fn record(&mut self, name: &str, wall_ns: u64, rounds: u64, messages: u64, words: u64) {
        self.spans.push(PhaseSpan { name: name.to_owned(), wall_ns, rounds, messages, words });
    }

    /// Runs `f`, records it as a purely local phase (zero rounds, zero
    /// messages, zero words), and returns its result.
    ///
    /// This is the one place build-phase code is allowed to read a wall
    /// clock: keeping the `Instant::now()` pair here means the oracle's
    /// kernel files (scanned by cc-lint's `determinism` rule) never touch a
    /// clock themselves — traced build phases call this instead of opening
    /// an allow-comment escape hatch.
    pub fn time_local<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let started = std::time::Instant::now();
        let out = f();
        self.record(name, started.elapsed().as_nanos() as u64, 0, 0, 0);
        out
    }

    /// Like [`time_local`](Self::time_local), but for local phases that
    /// also report a data volume: `f` returns `(result, words)` and the
    /// span records the words (e.g. artifact state copied while slicing a
    /// shard).
    pub fn time_local_words<T>(&mut self, name: &str, f: impl FnOnce() -> (T, u64)) -> T {
        let started = std::time::Instant::now();
        let (out, words) = f();
        self.record(name, started.elapsed().as_nanos() as u64, 0, 0, words);
        out
    }

    /// All spans in build order.
    pub fn spans(&self) -> &[PhaseSpan] {
        &self.spans
    }

    /// Looks a phase up by name.
    pub fn span(&self, name: &str) -> Option<&PhaseSpan> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Total wall time across phases, nanoseconds.
    pub fn total_wall_ns(&self) -> u64 {
        self.spans.iter().map(|s| s.wall_ns).sum()
    }

    /// Total rounds across phases.
    pub fn total_rounds(&self) -> u64 {
        self.spans.iter().map(|s| s.rounds).sum()
    }

    /// Publishes the trace as `cc_build_phase_*{phase="..."}` gauges so
    /// `/metrics` exposes build-phase cost next to the serving metrics.
    pub fn export_gauges(&self, registry: &Registry) {
        registry.describe("cc_build_phase_wall_ns", "Wall time per oracle build phase.");
        registry.describe("cc_build_phase_rounds", "Simulated clique rounds per build phase.");
        registry.describe("cc_build_phase_words", "Words moved (message volume) per build phase.");
        for s in &self.spans {
            let labels = [("phase", s.name.as_str())];
            registry.gauge("cc_build_phase_wall_ns", &labels).set(s.wall_ns as f64);
            registry.gauge("cc_build_phase_rounds", &labels).set(s.rounds as f64);
            registry.gauge("cc_build_phase_words", &labels).set(s.words as f64);
        }
    }

    /// The trace as a JSON array of span objects.
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.spans
                .iter()
                .map(|s| {
                    let mut o = JsonObject::new();
                    o.set("phase", s.name.as_str());
                    o.set("wall_ns", s.wall_ns);
                    o.set("rounds", s.rounds);
                    o.set("messages", s.messages);
                    o.set("words", s.words);
                    o.into()
                })
                .collect(),
        )
    }

    /// One log line per span, for `cc-serve --demo` startup output.
    pub fn log_lines(&self) -> String {
        self.spans
            .iter()
            .map(|s| {
                format!(
                    "build-trace phase={} rounds={} wall_ms={:.2} messages={} words={}",
                    s.name,
                    s.rounds,
                    s.wall_ns as f64 / 1e6,
                    s.messages,
                    s.words
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BuildTrace {
        let mut t = BuildTrace::new();
        t.record("k_nearest_balls", 2_000_000, 10, 100, 400);
        t.record("hitting_set_landmarks", 500_000, 1, 8, 8);
        t.record("mssp_columns", 7_000_000, 25, 900, 3600);
        t
    }

    #[test]
    fn totals_and_lookup() {
        let t = sample();
        assert_eq!(t.total_wall_ns(), 9_500_000);
        assert_eq!(t.total_rounds(), 36);
        assert_eq!(t.span("mssp_columns").unwrap().words, 3600);
        assert!(t.span("nope").is_none());
    }

    #[test]
    fn gauges_are_exported_per_phase() {
        let r = Registry::new();
        sample().export_gauges(&r);
        let snap = r.snapshot();
        assert_eq!(
            snap.gauge_value("cc_build_phase_rounds", &[("phase", "k_nearest_balls")]),
            Some(10.0)
        );
        assert_eq!(
            snap.gauge_value("cc_build_phase_wall_ns", &[("phase", "mssp_columns")]),
            Some(7_000_000.0)
        );
        let text = crate::render_prometheus(&snap);
        assert!(text.contains("cc_build_phase_rounds{phase=\"hitting_set_landmarks\"} 1"));
    }

    #[test]
    fn time_local_records_a_zero_round_span_and_passes_the_result_through() {
        let mut t = BuildTrace::new();
        let out = t.time_local("local_extraction", || 41 + 1);
        assert_eq!(out, 42);
        let got = t.time_local_words("partition_shard_0", || ("shard", 128));
        assert_eq!(got, "shard");
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!((spans[0].rounds, spans[0].messages, spans[0].words), (0, 0, 0));
        assert_eq!((spans[1].rounds, spans[1].messages, spans[1].words), (0, 0, 128));
        assert_eq!(t.span("partition_shard_0").unwrap().words, 128);
    }

    #[test]
    fn json_and_log_lines_list_every_phase() {
        let t = sample();
        let json = t.to_json().render();
        assert!(json.starts_with('['));
        assert!(json.contains("\"phase\":\"k_nearest_balls\""));
        assert!(json.contains("\"words\":3600"));
        let lines = t.log_lines();
        assert_eq!(lines.lines().count(), 3);
        assert!(lines.contains("build-trace phase=mssp_columns rounds=25"));
    }
}
