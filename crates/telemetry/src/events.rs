//! The structured event layer: a JSON-lines access/slow-query log with
//! monotonically assigned request ids.
//!
//! Every request is assigned an id from a process-wide monotone counter
//! ([`AccessLog::begin`]); whether its completion record is *written*
//! depends on the configured mode — everything (access log) or only
//! requests at or above a slowness threshold (slow-query log). Records
//! are rendered with the [`Json`](crate::Json) writer, so a path or
//! error containing a quote cannot corrupt the stream.

use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::json::JsonObject;

/// One completed request, ready to be logged.
#[derive(Debug, Clone)]
pub struct AccessRecord<'a> {
    /// Monotone request id from [`AccessLog::begin`].
    pub id: u64,
    /// HTTP method.
    pub method: &'a str,
    /// Request path (including the query string).
    pub path: &'a str,
    /// Response status code.
    pub status: u16,
    /// Endpoint class (`distance`, `batch`, `reload`, ...).
    pub endpoint: &'a str,
    /// Wall time spent serving the request, in nanoseconds.
    pub duration_ns: u64,
}

/// A JSON-lines access/slow-query log.
///
/// In slow-query mode (`threshold_ns > 0`) only requests taking at least
/// the threshold are written, each tagged `"slow":true`. With a zero
/// threshold every request is written.
pub struct AccessLog {
    sink: Mutex<Box<dyn Write + Send>>,
    next_id: AtomicU64,
    threshold_ns: u64,
}

impl std::fmt::Debug for AccessLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccessLog").field("threshold_ns", &self.threshold_ns).finish()
    }
}

impl AccessLog {
    /// A log writing JSON lines to `sink`; records faster than
    /// `threshold_ns` are suppressed (0 logs everything).
    pub fn to_writer(sink: Box<dyn Write + Send>, threshold_ns: u64) -> AccessLog {
        AccessLog { sink: Mutex::new(sink), next_id: AtomicU64::new(1), threshold_ns }
    }

    /// A log writing to stderr (the conventional place for `cc-serve`).
    pub fn stderr(threshold_ns: u64) -> AccessLog {
        Self::to_writer(Box::new(std::io::stderr()), threshold_ns)
    }

    /// Assigns the next monotone request id.
    pub fn begin(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// The configured slowness threshold in nanoseconds.
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns
    }

    /// Writes the completion record if it clears the threshold.
    pub fn record(&self, rec: &AccessRecord<'_>) {
        if rec.duration_ns < self.threshold_ns {
            return;
        }
        let mut o = JsonObject::new();
        o.set("request_id", rec.id);
        o.set("method", rec.method);
        o.set("path", rec.path);
        o.set("endpoint", rec.endpoint);
        o.set("status", rec.status as u64);
        o.set("duration_ns", rec.duration_ns);
        if self.threshold_ns > 0 {
            o.set("slow", true);
        }
        let line = o.render();
        if let Ok(mut sink) = self.sink.lock() {
            // A failed log write must never take down the serving path.
            let _ = writeln!(sink, "{line}");
            let _ = sink.flush();
        }
    }
}

/// An in-memory `Write` sink sharable across threads — lets tests (and
/// the bench) capture log output.
#[derive(Debug, Clone, Default)]
pub struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    /// An empty shared buffer.
    pub fn new() -> SharedBuf {
        SharedBuf::default()
    }

    /// The buffered bytes as a string (lossy).
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.0.lock().unwrap_or_else(PoisonError::into_inner)).into_owned()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner).extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec<'a>(id: u64, path: &'a str, duration_ns: u64) -> AccessRecord<'a> {
        AccessRecord { id, method: "GET", path, status: 200, endpoint: "distance", duration_ns }
    }

    #[test]
    fn request_ids_are_monotone() {
        let log = AccessLog::to_writer(Box::new(SharedBuf::new()), 0);
        let a = log.begin();
        let b = log.begin();
        let c = log.begin();
        assert!(a < b && b < c);
    }

    #[test]
    fn access_mode_logs_every_request_as_json_lines() {
        let buf = SharedBuf::new();
        let log = AccessLog::to_writer(Box::new(buf.clone()), 0);
        log.record(&rec(log.begin(), "/distance?u=0&v=1", 10));
        log.record(&rec(log.begin(), "/distance?u=2&v=3", 20));
        let out = buf.contents();
        assert_eq!(out.lines().count(), 2);
        assert!(out.lines().all(|l| l.starts_with("{\"request_id\":")));
        assert!(out.contains("\"duration_ns\":20"));
        assert!(!out.contains("\"slow\""));
    }

    #[test]
    fn slow_query_mode_suppresses_fast_requests_and_tags_slow_ones() {
        let buf = SharedBuf::new();
        let log = AccessLog::to_writer(Box::new(buf.clone()), 1_000);
        log.record(&rec(log.begin(), "/distance?u=0&v=1", 999));
        log.record(&rec(log.begin(), "/batch", 5_000));
        let out = buf.contents();
        assert_eq!(out.lines().count(), 1);
        assert!(out.contains("\"slow\":true"));
        assert!(out.contains("\"duration_ns\":5000"));
    }

    #[test]
    fn hostile_paths_stay_valid_json() {
        let buf = SharedBuf::new();
        let log = AccessLog::to_writer(Box::new(buf.clone()), 0);
        log.record(&rec(log.begin(), "/distance?u=\"\\evil\n", 1));
        let out = buf.contents();
        assert!(out.contains(r#""path":"/distance?u=\"\\evil\n""#));
    }
}
