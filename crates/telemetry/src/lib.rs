//! # `cc-telemetry`: observability primitives for the serving stack
//!
//! A std-only crate (matching the `crates/shim` no-network philosophy)
//! that gives every layer of the congested-clique serving system the same
//! vocabulary for *seeing itself*: counters, gauges, latency histograms, a
//! structured access log, and per-phase build traces.
//!
//! The pieces:
//!
//! * [`Histogram`] — a fixed-bucket, log₂-scaled latency histogram backed
//!   by an atomic bucket array. `record(ns)` is lock-free and wait-free on
//!   the hot path; [`HistSnapshot::quantile`] answers p50/p99 from a
//!   consistent snapshot. Bucket `i` holds values in `(2^(i-1), 2^i]`, so
//!   a reported quantile is always within 2× of the true value.
//! * [`Registry`] — a process-wide named collection of [`Counter`]s,
//!   [`Gauge`]s, and histograms. Registration takes a short lock;
//!   the handles it returns are plain `Arc`s whose operations are
//!   lock-free atomics. [`Registry::snapshot`] captures everything at
//!   once so `/stats` and `/metrics` render from the same data and can
//!   never disagree. A [`Registry::new_disabled`] registry turns every
//!   handle into a no-op, which is how the bench measures instrumentation
//!   overhead.
//! * [`render_prometheus`] — Prometheus text exposition (`# TYPE`,
//!   cumulative `_bucket`/`_sum`/`_count` series) of a snapshot.
//! * [`Json`] / [`JsonObject`] — a tiny JSON writer (escaping, nesting)
//!   so no endpoint assembles JSON by `format!` string concatenation.
//! * [`AccessLog`] — a JSON-lines access/slow-query log with
//!   monotonically assigned request ids.
//! * [`BuildTrace`] — per-phase spans (rounds, wall time, message volume)
//!   filled by the oracle builder and shard partitioner, exportable as
//!   registry gauges, JSON, or human-readable log lines.
//!
//! # Example
//!
//! ```
//! use cc_telemetry::Registry;
//!
//! let registry = Registry::new();
//! let requests = registry.counter("cc_requests_total", &[]);
//! let latency = registry.histogram("cc_request_duration_ns", &[("endpoint", "distance")]);
//! requests.inc();
//! latency.record(1500);
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter_value("cc_requests_total", &[]), Some(1));
//! let text = cc_telemetry::render_prometheus(&snap);
//! assert!(text.contains("# TYPE cc_requests_total counter"));
//! ```
//!
//! Unsafe code is forbidden (`#![forbid(unsafe_code)]`), as across the
//! whole workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod events;
mod expo;
mod hist;
mod json;
mod registry;
mod trace;

pub use events::{AccessLog, AccessRecord, SharedBuf};
pub use expo::render_prometheus;
pub use hist::{HistSnapshot, Histogram, BUCKETS};
pub use json::{Json, JsonObject};
pub use registry::{Counter, Gauge, MetricId, Registry, RegistrySnapshot};
pub use trace::{BuildTrace, PhaseSpan};
