//! A process-wide named collection of counters, gauges, and histograms.
//!
//! Registration (looking a metric up by name + labels) takes a short
//! mutex; the [`Counter`], [`Gauge`], and [`Histogram`] handles it hands
//! back are `Arc`s whose hot-path operations are single lock-free
//! atomics. Handles are registered once at setup and cloned into the
//! request path, so the lock is never on the serving path.
//!
//! [`Registry::snapshot`] captures every metric at once; `/stats` and
//! `/metrics` both render from that one snapshot, so they cannot
//! disagree about a counter value.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::hist::{HistSnapshot, Histogram};

/// A metric's identity: family name plus an ordered label set.
///
/// Families group series in the Prometheus exposition: all series of one
/// family share a single `# TYPE` line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricId {
    /// The metric family name, e.g. `cc_request_duration_ns`.
    pub family: String,
    /// Label key/value pairs, e.g. `[("endpoint", "distance")]`.
    pub labels: Vec<(String, String)>,
}

impl MetricId {
    fn new(family: &str, labels: &[(&str, &str)]) -> MetricId {
        MetricId {
            family: family.to_owned(),
            labels: labels.iter().map(|(k, v)| ((*k).to_owned(), (*v).to_owned())).collect(),
        }
    }

    /// Renders the label set as `{k="v",...}`, or `""` when unlabeled.
    /// Label values are escaped per the Prometheus text format
    /// (backslash, double quote, newline).
    pub fn label_suffix(&self) -> String {
        if self.labels.is_empty() {
            return String::new();
        }
        let escape = |v: &str| v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n");
        let body: Vec<String> =
            self.labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape(v))).collect();
        format!("{{{}}}", body.join(","))
    }
}

/// A monotonically increasing counter handle; cloning shares the value.
#[derive(Debug, Clone)]
pub struct Counter(Arc<CounterInner>);

#[derive(Debug)]
struct CounterInner {
    value: AtomicU64,
    enabled: bool,
}

impl Counter {
    fn new(enabled: bool) -> Counter {
        Counter(Arc::new(CounterInner { value: AtomicU64::new(0), enabled }))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if self.0.enabled {
            self.0.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.value.load(Ordering::Relaxed)
    }
}

/// A gauge handle holding an `f64`; cloning shares the value.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<GaugeInner>);

#[derive(Debug)]
struct GaugeInner {
    bits: AtomicU64,
    enabled: bool,
}

impl Gauge {
    fn new(enabled: bool) -> Gauge {
        Gauge(Arc::new(GaugeInner { bits: AtomicU64::new(0f64.to_bits()), enabled }))
    }

    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        if self.0.enabled {
            self.0.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative) with a CAS loop.
    pub fn add(&self, delta: f64) {
        if !self.0.enabled {
            return;
        }
        let mut cur = self.0.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self.0.bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Adds one (e.g. a job entered the queue).
    pub fn inc(&self) {
        self.add(1.0);
    }

    /// Subtracts one (e.g. a job left the queue).
    pub fn dec(&self) {
        self.add(-1.0);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.bits.load(Ordering::Relaxed))
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<MetricId, Counter>,
    gauges: BTreeMap<MetricId, Gauge>,
    histograms: BTreeMap<MetricId, Arc<Histogram>>,
    help: BTreeMap<String, String>,
}

/// The process-wide metric registry.
///
/// See the [crate docs](crate) for the full model. Registering the same
/// family + labels twice returns a handle to the same underlying metric.
pub struct Registry {
    inner: Mutex<Inner>,
    enabled: bool,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An enabled registry: handles record normally.
    pub fn new() -> Registry {
        Registry { inner: Mutex::new(Inner::default()), enabled: true }
    }

    /// A disabled registry: every handle it returns is a permanent no-op
    /// (reads return zero). Used to measure instrumentation overhead.
    pub fn new_disabled() -> Registry {
        Registry { inner: Mutex::new(Inner::default()), enabled: false }
    }

    /// Whether handles from this registry record at all.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Attaches help text to a metric family (`# HELP` in the exposition).
    pub fn describe(&self, family: &str, help: &str) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.help.insert(family.to_owned(), help.to_owned());
    }

    /// Returns (registering on first use) the counter `family{labels}`.
    pub fn counter(&self, family: &str, labels: &[(&str, &str)]) -> Counter {
        let id = MetricId::new(family, labels);
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.counters.entry(id).or_insert_with(|| Counter::new(self.enabled)).clone()
    }

    /// Returns (registering on first use) the gauge `family{labels}`.
    pub fn gauge(&self, family: &str, labels: &[(&str, &str)]) -> Gauge {
        let id = MetricId::new(family, labels);
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.gauges.entry(id).or_insert_with(|| Gauge::new(self.enabled)).clone()
    }

    /// Returns (registering on first use) the histogram `family{labels}`.
    pub fn histogram(&self, family: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let id = MetricId::new(family, labels);
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner
            .histograms
            .entry(id)
            .or_insert_with(|| Arc::new(Histogram::with_enabled(self.enabled)))
            .clone()
    }

    /// Captures every registered metric at once, ordered by family then
    /// label set.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        RegistrySnapshot {
            counters: inner.counters.iter().map(|(id, c)| (id.clone(), c.get())).collect(),
            gauges: inner.gauges.iter().map(|(id, g)| (id.clone(), g.get())).collect(),
            histograms: inner.histograms.iter().map(|(id, h)| (id.clone(), h.snapshot())).collect(),
            help: inner.help.clone(),
        }
    }
}

/// A point-in-time copy of every metric in a [`Registry`].
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// Counter samples, sorted by id.
    pub counters: Vec<(MetricId, u64)>,
    /// Gauge samples, sorted by id.
    pub gauges: Vec<(MetricId, f64)>,
    /// Histogram snapshots, sorted by id.
    pub histograms: Vec<(MetricId, HistSnapshot)>,
    /// `# HELP` text per family.
    pub help: BTreeMap<String, String>,
}

impl RegistrySnapshot {
    fn matches(id: &MetricId, family: &str, labels: &[(&str, &str)]) -> bool {
        id.family == family
            && id.labels.len() == labels.len()
            && id.labels.iter().zip(labels).all(|((k, v), (lk, lv))| k == lk && v == lv)
    }

    /// The value of counter `family{labels}`, if registered.
    pub fn counter_value(&self, family: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.counters.iter().find(|(id, _)| Self::matches(id, family, labels)).map(|(_, v)| *v)
    }

    /// The value of gauge `family{labels}`, if registered.
    pub fn gauge_value(&self, family: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges.iter().find(|(id, _)| Self::matches(id, family, labels)).map(|(_, v)| *v)
    }

    /// The snapshot of histogram `family{labels}`, if registered.
    pub fn histogram(&self, family: &str, labels: &[(&str, &str)]) -> Option<&HistSnapshot> {
        self.histograms.iter().find(|(id, _)| Self::matches(id, family, labels)).map(|(_, h)| h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_across_registration() {
        let r = Registry::new();
        let a = r.counter("cc_requests_total", &[]);
        let b = r.counter("cc_requests_total", &[]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.snapshot().counter_value("cc_requests_total", &[]), Some(3));
    }

    #[test]
    fn labeled_series_are_distinct() {
        let r = Registry::new();
        r.counter("cc_requests_total", &[("endpoint", "distance")]).inc();
        r.counter("cc_requests_total", &[("endpoint", "batch")]).add(5);
        let snap = r.snapshot();
        assert_eq!(snap.counter_value("cc_requests_total", &[("endpoint", "distance")]), Some(1));
        assert_eq!(snap.counter_value("cc_requests_total", &[("endpoint", "batch")]), Some(5));
        assert_eq!(snap.counter_value("cc_requests_total", &[]), None);
    }

    #[test]
    fn gauge_add_and_set_round_trip() {
        let r = Registry::new();
        let g = r.gauge("cc_pool_queue_depth", &[]);
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1.0);
        g.set(0.25);
        assert_eq!(r.snapshot().gauge_value("cc_pool_queue_depth", &[]), Some(0.25));
    }

    #[test]
    fn disabled_registry_is_a_no_op() {
        let r = Registry::new_disabled();
        let c = r.counter("c", &[]);
        let g = r.gauge("g", &[]);
        let h = r.histogram("h", &[]);
        c.inc();
        g.set(7.0);
        g.inc();
        h.record(1);
        assert!(!r.is_enabled());
        let snap = r.snapshot();
        assert_eq!(snap.counter_value("c", &[]), Some(0));
        assert_eq!(snap.gauge_value("g", &[]), Some(0.0));
        assert_eq!(snap.histogram("h", &[]).unwrap().count(), 0);
    }

    #[test]
    fn snapshot_is_ordered_by_family_then_labels() {
        let r = Registry::new();
        r.counter("b_total", &[]).inc();
        r.counter("a_total", &[("x", "2")]).inc();
        r.counter("a_total", &[("x", "1")]).inc();
        let snap = r.snapshot();
        let names: Vec<String> = snap
            .counters
            .iter()
            .map(|(id, _)| format!("{}{}", id.family, id.label_suffix()))
            .collect();
        assert_eq!(names, vec!["a_total{x=\"1\"}", "a_total{x=\"2\"}", "b_total"]);
    }
}
