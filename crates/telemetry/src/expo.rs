//! Prometheus text exposition (version 0.0.4) of a registry snapshot.
//!
//! One `# TYPE` (and optional `# HELP`) line per metric family, followed
//! by every series of that family. Histograms render the conventional
//! cumulative `_bucket{le="..."}` series (sorted by `le`, ending with
//! `+Inf`) plus `_sum` and `_count`.

use crate::hist::HistSnapshot;
use crate::registry::{MetricId, RegistrySnapshot};
use std::fmt::Write as _;

/// Formats an `f64` gauge value the way Prometheus expects (plain
/// decimal; integral values without a trailing `.0` are fine either way).
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn render_family_header(
    out: &mut String,
    family: &str,
    kind: &str,
    help: &std::collections::BTreeMap<String, String>,
) {
    if let Some(h) = help.get(family) {
        let _ = writeln!(out, "# HELP {family} {}", h.replace('\n', " "));
    }
    let _ = writeln!(out, "# TYPE {family} {kind}");
}

fn render_histogram(out: &mut String, id: &MetricId, snap: &HistSnapshot) {
    let mut cumulative = 0u64;
    for (i, &c) in snap.buckets.iter().enumerate() {
        cumulative += c;
        let le = if i == snap.buckets.len() - 1 {
            "+Inf".to_owned()
        } else {
            format!("{}", HistSnapshot::upper_bound(i))
        };
        let mut with_le = id.clone();
        with_le.labels.push(("le".to_owned(), le));
        let _ = writeln!(out, "{}_bucket{} {cumulative}", id.family, with_le.label_suffix());
    }
    let _ = writeln!(out, "{}_sum{} {}", id.family, id.label_suffix(), snap.sum);
    let _ = writeln!(out, "{}_count{} {cumulative}", id.family, id.label_suffix());
}

/// Renders a snapshot in Prometheus text exposition format.
pub fn render_prometheus(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();

    let mut family = None::<&str>;
    for (id, value) in &snap.counters {
        if family != Some(id.family.as_str()) {
            family = Some(id.family.as_str());
            render_family_header(&mut out, &id.family, "counter", &snap.help);
        }
        let _ = writeln!(out, "{}{} {value}", id.family, id.label_suffix());
    }

    let mut family = None::<&str>;
    for (id, value) in &snap.gauges {
        if family != Some(id.family.as_str()) {
            family = Some(id.family.as_str());
            render_family_header(&mut out, &id.family, "gauge", &snap.help);
        }
        let _ = writeln!(out, "{}{} {}", id.family, id.label_suffix(), fmt_f64(*value));
    }

    let mut family = None::<&str>;
    for (id, hist) in &snap.histograms {
        if family != Some(id.family.as_str()) {
            family = Some(id.family.as_str());
            render_family_header(&mut out, &id.family, "histogram", &snap.help);
        }
        render_histogram(&mut out, id, hist);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    /// A small lint of the exposition contract: every series is preceded
    /// by a `# TYPE` line for its family, histogram buckets are
    /// cumulative (non-decreasing) and `le`-sorted, and `_count` matches
    /// the `+Inf` bucket.
    fn lint(text: &str) {
        let mut typed: std::collections::BTreeSet<String> = Default::default();
        let mut last_le: Option<(String, u64)> = None;
        let mut last_cum: u64 = 0;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let family = rest.split_whitespace().next().unwrap().to_owned();
                typed.insert(family);
                continue;
            }
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let name = line.split(['{', ' ']).next().unwrap();
            let family = name
                .strip_suffix("_bucket")
                .or_else(|| name.strip_suffix("_sum"))
                .or_else(|| name.strip_suffix("_count"))
                .filter(|f| typed.contains(*f))
                .unwrap_or(name);
            assert!(typed.contains(family), "series {name} has no preceding # TYPE ({line})");

            if name.ends_with("_bucket") {
                let le_raw = line.split("le=\"").nth(1).unwrap().split('"').next().unwrap();
                let le = if le_raw == "+Inf" { u64::MAX } else { le_raw.parse::<u64>().unwrap() };
                let cum: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
                let series = line.split("le=").next().unwrap().to_owned();
                if let Some((prev_series, prev_le)) = &last_le {
                    if *prev_series == series {
                        assert!(le > *prev_le, "le not sorted in {line}");
                        assert!(cum >= last_cum, "buckets not cumulative in {line}");
                    }
                }
                last_le = Some((series, le));
                last_cum = cum;
            }
        }
    }

    #[test]
    fn exposition_passes_the_format_lint() {
        let r = Registry::new();
        r.describe("cc_requests_total", "Requests answered, by endpoint.");
        r.counter("cc_requests_total", &[("endpoint", "distance")]).add(3);
        r.counter("cc_requests_total", &[("endpoint", "batch")]).inc();
        r.gauge("cc_pool_queue_depth", &[]).set(2.0);
        r.gauge("cc_cache_hit_rate", &[]).set(0.93);
        let h = r.histogram("cc_request_duration_ns", &[("endpoint", "distance")]);
        h.record(100);
        h.record(3000);
        h.record(u64::MAX);
        let text = render_prometheus(&r.snapshot());
        lint(&text);
        assert!(text.contains("# TYPE cc_requests_total counter"));
        assert!(text.contains("# HELP cc_requests_total"));
        assert!(text.contains("cc_requests_total{endpoint=\"distance\"} 3"));
        assert!(text.contains("# TYPE cc_pool_queue_depth gauge"));
        assert!(text.contains("cc_cache_hit_rate 0.93"));
        assert!(text.contains("# TYPE cc_request_duration_ns histogram"));
        assert!(text.contains("cc_request_duration_ns_bucket{endpoint=\"distance\",le=\"+Inf\"} 3"));
        assert!(text.contains("cc_request_duration_ns_count{endpoint=\"distance\"} 3"));
        assert!(text.contains("cc_request_duration_ns_sum{endpoint=\"distance\"}"));
    }

    #[test]
    fn count_equals_inf_bucket() {
        let r = Registry::new();
        let h = r.histogram("h_ns", &[]);
        for v in [1u64, 2, 4, 1 << 40, u64::MAX] {
            h.record(v);
        }
        let text = render_prometheus(&r.snapshot());
        lint(&text);
        assert!(text.contains("h_ns_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("h_ns_count 5"));
    }
}
