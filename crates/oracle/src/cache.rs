//! A bounded, sharded LRU result cache over **any** [`QueryBackend`].

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use cc_matrix::Dist;

use crate::{DistanceOracle, OracleError, QueryBackend};

/// Number of independently locked shards. A power of two so the shard pick
/// is a mask; 16 keeps contention low for the thread counts `query_batch`
/// uses without bloating per-shard bookkeeping.
const SHARDS: usize = 16;

/// Snapshot of cache effectiveness counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that fell through to the backend.
    pub misses: u64,
    /// Entries currently resident (across all shards).
    pub len: usize,
    /// Maximum resident entries (across all shards); `0` when the cache is
    /// disabled (capacity 0 = pass-through).
    pub capacity: usize,
}

impl CacheStats {
    /// Fraction of queries served from the cache (0 when nothing was asked).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Multiply-shift hasher for the cache's packed pair keys. The keys are
/// already well-mixed 64-bit values ((lo << 32) | hi node ids), so the
/// default SipHash — ~25 ns per lookup, built to resist adversarial key
/// collisions a distance cache doesn't face — is pure overhead on the
/// query hot path. One Fibonacci multiply plus a fold gives uniform
/// bucket spread for a few nanoseconds.
#[derive(Default)]
struct PairKeyHasher(u64);

/// 2^64 / φ, the usual Fibonacci hashing multiplier.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

impl Hasher for PairKeyHasher {
    fn finish(&self) -> u64 {
        self.0 ^ (self.0 >> 32)
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (unused by the u64-keyed map, but kept total).
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FIB);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(FIB);
    }
}

type PairKeyMap = HashMap<u64, usize, BuildHasherDefault<PairKeyHasher>>;

/// One LRU shard: a map from packed pair key to a slot in an intrusive
/// doubly-linked list ordered by recency (index-based, no unsafe).
struct Shard {
    map: PairKeyMap,
    /// Slot storage: `(key, value, prev, next)`; `usize::MAX` terminates.
    slots: Vec<(u64, u64, usize, usize)>,
    head: usize,
    tail: usize,
    capacity: usize,
}

const NIL: usize = usize::MAX;

/// Smallest batch worth the shard-grouping pass in the serial batch path;
/// below this, grouping bookkeeping costs more than per-pair locking.
const GROUPED_BATCH_MIN: usize = 64;

impl Shard {
    fn new(capacity: usize) -> Shard {
        Shard {
            map: PairKeyMap::with_capacity_and_hasher(capacity, BuildHasherDefault::default()),
            slots: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn unlink(&mut self, slot: usize) {
        let (_, _, prev, next) = self.slots[slot];
        match prev {
            NIL => self.head = next,
            p => self.slots[p].3 = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].2 = prev,
        }
    }

    fn push_front(&mut self, slot: usize) {
        self.slots[slot].2 = NIL;
        self.slots[slot].3 = self.head;
        match self.head {
            NIL => self.tail = slot,
            h => self.slots[h].2 = slot,
        }
        self.head = slot;
    }

    fn get(&mut self, key: u64) -> Option<u64> {
        let slot = *self.map.get(&key)?;
        self.unlink(slot);
        self.push_front(slot);
        Some(self.slots[slot].1)
    }

    fn contains(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    fn insert(&mut self, key: u64, value: u64) {
        if let Some(&slot) = self.map.get(&key) {
            self.slots[slot].1 = value;
            self.unlink(slot);
            self.push_front(slot);
            return;
        }
        let slot = if self.slots.len() < self.capacity {
            self.slots.push((key, value, NIL, NIL));
            self.slots.len() - 1
        } else {
            // Evict the least-recently-used entry and reuse its slot.
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(&self.slots[victim].0);
            self.slots[victim].0 = key;
            self.slots[victim].1 = value;
            victim
        };
        self.map.insert(key, slot);
        self.push_front(slot);
    }

    /// Resident keys in most-recently-used-first order.
    fn keys_by_recency(&self) -> Vec<u64> {
        let mut keys = Vec::with_capacity(self.map.len());
        let mut at = self.head;
        while at != NIL {
            keys.push(self.slots[at].0);
            at = self.slots[at].3;
        }
        keys
    }
}

/// Any [`QueryBackend`] fronted by a bounded, sharded LRU cache of query
/// results — a monolithic [`DistanceOracle`] (the default type parameter),
/// a [`crate::ShardRouter`], or an erased `Box<dyn QueryBackend>`. Shards
/// are locked independently, so concurrent querying threads rarely contend;
/// hit/miss counters are lock-free atomics.
///
/// `CachingOracle` is itself a [`QueryBackend`], so caches stack anywhere a
/// backend is expected. A capacity of `0` disables caching: every query
/// passes straight through (and counts as a miss), which keeps `/stats`
/// accounting uniform for cacheless deployments.
///
/// # Example
///
/// ```
/// use cc_clique::Clique;
/// use cc_graph::generators;
/// use cc_oracle::{CachingOracle, OracleBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::gnp(32, 0.2, 1)?;
/// let mut clique = Clique::new(32);
/// let oracle = OracleBuilder::new().build(&mut clique, &g)?;
/// let cached = CachingOracle::new(oracle, 1024);
/// let first = cached.try_query(0, 31)?;
/// let second = cached.try_query(0, 31)?; // served from cache
/// assert_eq!(first, second);
/// assert_eq!(cached.stats().hits, 1);
/// # Ok(())
/// # }
/// ```
pub struct CachingOracle<B: QueryBackend = DistanceOracle> {
    backend: B,
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<B: QueryBackend> CachingOracle<B> {
    /// Wraps `backend` with a cache holding at most `capacity` results
    /// (rounded up to at least one entry per shard). A capacity of `0`
    /// disables caching entirely: queries pass through and count as misses.
    pub fn new(backend: B, capacity: usize) -> CachingOracle<B> {
        let shards = if capacity == 0 {
            Vec::new()
        } else {
            let per_shard = capacity.div_ceil(SHARDS).max(1);
            (0..SHARDS).map(|_| Mutex::new(Shard::new(per_shard))).collect()
        };
        CachingOracle { backend, shards, hits: AtomicU64::new(0), misses: AtomicU64::new(0) }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.backend
    }

    /// Consumes the wrapper, returning the backend.
    pub fn into_inner(self) -> B {
        self.backend
    }

    /// Number of nodes the wrapped backend covers.
    pub fn n(&self) -> usize {
        self.backend.n()
    }

    pub(crate) fn key(u: usize, v: usize) -> u64 {
        // The oracle is symmetric, so canonicalize the pair: doubles the
        // effective capacity for undirected traffic.
        let (lo, hi) = if u <= v { (u, v) } else { (v, u) };
        ((lo as u64) << 32) | hi as u64
    }

    fn unkey(key: u64) -> (usize, usize) {
        ((key >> 32) as usize, (key & 0xffff_ffff) as usize)
    }

    fn check_pair(&self, u: usize, v: usize) -> Result<(), OracleError> {
        let n = self.backend.n();
        if u >= n || v >= n {
            return Err(OracleError::QueryOutOfRange { u, v, n });
        }
        Ok(())
    }

    /// Cached query for serving layers: identical answers to the wrapped
    /// backend, plus counters. Out-of-range endpoints become
    /// [`OracleError::QueryOutOfRange`], never a panic (and never a
    /// poisoned shard lock — validation happens before locking).
    ///
    /// # Errors
    ///
    /// [`OracleError::QueryOutOfRange`] if `u` or `v` is out of range.
    pub fn try_query(&self, u: usize, v: usize) -> Result<Dist, OracleError> {
        self.check_pair(u, v)?;
        Ok(self.query_validated(u, v))
    }

    /// The cache lookup kernel; callers must have validated `u, v < n`.
    ///
    /// The shard lock is taken exactly once and held across the miss
    /// compute + insert: a second thread asking for the same key blocks
    /// briefly and then *hits*, so a result is never computed (or a miss
    /// counted) twice for one resident key. The backend query is cheap
    /// (nanoseconds for the monolith, two half-queries for a router), far
    /// cheaper than a second lock round-trip.
    fn query_validated(&self, u: usize, v: usize) -> Dist {
        if self.shards.is_empty() {
            // Capacity 0: pass-through, accounted as a miss. The caller
            // validated the pair, so the backend cannot refuse it; INF is
            // the unreachable fallback, never a panic on a serving path.
            self.misses.fetch_add(1, Ordering::Relaxed);
            return self.backend.try_query(u, v).unwrap_or(Dist::INF);
        }
        let key = Self::key(u, v);
        let mut shard = self.shards[(key % SHARDS as u64) as usize]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(raw) = shard.get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Dist::from_raw(raw);
        }
        let answer = self.backend.try_query(u, v).unwrap_or(Dist::INF);
        self.misses.fetch_add(1, Ordering::Relaxed);
        shard.insert(key, answer.raw());
        answer
    }

    /// Cached batch query (shard-parallel like the uncached batch):
    /// validates every pair before computing anything.
    ///
    /// # Errors
    ///
    /// [`OracleError::QueryOutOfRange`] naming the first offending pair.
    pub fn try_query_batch(&self, pairs: &[(usize, usize)]) -> Result<Vec<Dist>, OracleError> {
        for &(u, v) in pairs {
            self.check_pair(u, v)?;
        }
        let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
        if threads <= 1 || pairs.len() < 1024 {
            if pairs.len() >= GROUPED_BATCH_MIN && !self.shards.is_empty() {
                return Ok(self.query_batch_grouped(pairs));
            }
            return Ok(pairs.iter().map(|&(u, v)| self.query_validated(u, v)).collect());
        }
        let shard = pairs.len().div_ceil(threads);
        let mut out = vec![Dist::INF; pairs.len()];
        std::thread::scope(|scope| {
            for (chunk_in, chunk_out) in pairs.chunks(shard).zip(out.chunks_mut(shard)) {
                scope.spawn(move || {
                    for (slot, &(u, v)) in chunk_out.iter_mut().zip(chunk_in) {
                        *slot = self.query_validated(u, v);
                    }
                });
            }
        });
        Ok(out)
    }

    /// Serial batch kernel amortizing the per-pair overhead: pairs are
    /// grouped by shard, each shard is locked exactly once for its whole
    /// group, and the hit/miss counters are bumped once per batch. Answers
    /// and per-shard LRU recency order are identical to the pair-at-a-time
    /// path — within one shard, pairs are still processed in batch order.
    /// Callers must have validated every pair and `!self.shards.is_empty()`.
    fn query_batch_grouped(&self, pairs: &[(usize, usize)]) -> Vec<Dist> {
        // Counting sort by shard: one pass to size the groups, one to
        // scatter indices — no per-shard Vec growth on the hot path.
        let keys: Vec<u64> = pairs.iter().map(|&(u, v)| Self::key(u, v)).collect();
        let mut counts = [0usize; SHARDS];
        for key in &keys {
            counts[(key % SHARDS as u64) as usize] += 1;
        }
        let mut starts = [0usize; SHARDS];
        let mut at = 0;
        for (start, count) in starts.iter_mut().zip(counts) {
            *start = at;
            at += count;
        }
        let mut order = vec![0usize; pairs.len()];
        let mut fill = starts;
        for (i, key) in keys.iter().enumerate() {
            let which = (key % SHARDS as u64) as usize;
            order[fill[which]] = i;
            fill[which] += 1;
        }
        let mut out = vec![Dist::INF; pairs.len()];
        let (mut hits, mut misses) = (0u64, 0u64);
        for (which, (start, count)) in starts.iter().zip(counts).enumerate() {
            if count == 0 {
                continue;
            }
            let mut shard = self.shards[which].lock().unwrap_or_else(PoisonError::into_inner);
            for &i in &order[*start..*start + count] {
                if let Some(raw) = shard.get(keys[i]) {
                    hits += 1;
                    out[i] = Dist::from_raw(raw);
                    continue;
                }
                let (u, v) = pairs[i];
                // Pairs were validated before any shard work; INF is the
                // unreachable fallback, never a panic under a shard lock.
                let answer = self.backend.try_query(u, v).unwrap_or(Dist::INF);
                misses += 1;
                shard.insert(keys[i], answer.raw());
                out[i] = answer;
            }
        }
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.misses.fetch_add(misses, Ordering::Relaxed);
        out
    }

    /// The resident pairs in approximate hottest-first order, up to
    /// `limit`: each shard's keys most-recently-used first, interleaved
    /// round-robin across shards (exact global recency would need a global
    /// lock order the sharded design deliberately avoids).
    ///
    /// This is the donor side of a cache warm-up: a serving layer replays
    /// these pairs into a fresh generation's cache after a hot reload, so
    /// the hit rate doesn't fall off a cliff at every swap.
    pub fn hottest_keys(&self, limit: usize) -> Vec<(usize, usize)> {
        if limit == 0 || self.shards.is_empty() {
            return Vec::new();
        }
        let per_shard: Vec<Vec<u64>> = self
            .shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).keys_by_recency())
            .collect();
        let mut keys = Vec::with_capacity(limit.min(per_shard.iter().map(Vec::len).sum()));
        let deepest = per_shard.iter().map(Vec::len).max().unwrap_or(0);
        'fill: for depth in 0..deepest {
            for shard in &per_shard {
                if let Some(&key) = shard.get(depth) {
                    keys.push(Self::unkey(key));
                    if keys.len() == limit {
                        break 'fill;
                    }
                }
            }
        }
        keys
    }

    /// Computes and inserts `pairs` without touching the hit/miss counters
    /// (warm-up traffic is not client traffic), skipping out-of-range pairs
    /// (the new artifact may be smaller than the donor) and pairs already
    /// resident. Returns how many entries were actually warmed.
    ///
    /// Answers are computed by **this** cache's backend, so a warm-up can
    /// never leak a stale answer from the donor generation.
    pub fn warm(&self, pairs: &[(usize, usize)]) -> usize {
        if self.shards.is_empty() {
            return 0;
        }
        let mut warmed = 0;
        for &(u, v) in pairs {
            if self.check_pair(u, v).is_err() {
                continue;
            }
            let key = Self::key(u, v);
            let mut shard = self.shards[(key % SHARDS as u64) as usize]
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if shard.contains(key) {
                continue;
            }
            // check_pair passed, so the backend cannot refuse; skipping on
            // the unreachable error beats panicking under a shard lock.
            let Ok(answer) = self.backend.try_query(u, v) else {
                continue;
            };
            shard.insert(key, answer.raw());
            warmed += 1;
        }
        warmed
    }

    /// Current hit/miss/occupancy counters.
    pub fn stats(&self) -> CacheStats {
        // One acquisition per shard: len and capacity are read under the
        // same guard, so the pair is consistent per shard.
        let (mut len, mut capacity) = (0usize, 0usize);
        for s in &self.shards {
            let shard = s.lock().unwrap_or_else(PoisonError::into_inner);
            len += shard.map.len();
            capacity += shard.capacity;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            len,
            capacity,
        }
    }
}

impl CachingOracle<DistanceOracle> {
    /// The wrapped artifact (alias of [`CachingOracle::inner`] for the
    /// monolithic default).
    pub fn oracle(&self) -> &DistanceOracle {
        &self.backend
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OracleBuilder, ShardedArtifact};
    use cc_clique::Clique;
    use cc_graph::generators;

    fn build(n: usize) -> DistanceOracle {
        let g = generators::gnp_weighted(n, 0.15, 20, 11).unwrap();
        let mut clique = Clique::new(n);
        OracleBuilder::new().build(&mut clique, &g).unwrap()
    }

    fn cached(n: usize, capacity: usize) -> CachingOracle {
        CachingOracle::new(build(n), capacity)
    }

    #[test]
    fn cached_answers_match_uncached() {
        // Capacity comfortably above the 528 unique canonical pairs, so the
        // second pass is served entirely from the cache.
        let c = cached(32, 2048);
        for u in 0..32 {
            for v in 0..32 {
                assert_eq!(
                    c.try_query(u, v).unwrap(),
                    c.oracle().try_query(u, v).unwrap(),
                    "({u},{v})"
                );
            }
        }
        let before = c.stats();
        for u in 0..32 {
            for v in 0..u {
                assert_eq!(c.try_query(u, v).unwrap(), c.oracle().try_query(u, v).unwrap());
            }
        }
        let after = c.stats();
        assert_eq!(after.misses, before.misses, "second pass must not miss");
        assert!(after.hits > before.hits);
    }

    #[test]
    fn symmetric_pairs_share_one_entry() {
        let c = cached(16, 64);
        c.try_query(3, 7).unwrap();
        c.try_query(7, 3).unwrap();
        let stats = c.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn capacity_is_bounded_and_lru_evicts() {
        let c = cached(32, SHARDS); // one entry per shard
        for u in 0..32 {
            for v in 0..32 {
                c.try_query(u, v).unwrap();
            }
        }
        let stats = c.stats();
        assert!(stats.len <= stats.capacity);
        assert_eq!(stats.capacity, SHARDS);
        // Everything evicted long ago: re-querying the first pair misses.
        let misses_before = c.stats().misses;
        c.try_query(0, 1).unwrap();
        assert_eq!(c.stats().misses, misses_before + 1);
    }

    #[test]
    fn zero_capacity_disables_caching_but_keeps_accounting() {
        let c = cached(16, 0);
        for _ in 0..3 {
            assert_eq!(c.try_query(0, 1).unwrap(), c.oracle().try_query(0, 1).unwrap());
        }
        let stats = c.stats();
        assert_eq!((stats.hits, stats.misses), (0, 3), "pass-through counts misses only");
        assert_eq!((stats.len, stats.capacity), (0, 0));
        assert!(c.hottest_keys(10).is_empty());
        assert_eq!(c.warm(&[(0, 1)]), 0);
    }

    #[test]
    fn hit_rate_reflects_traffic() {
        let c = cached(16, 512);
        assert_eq!(c.stats().hit_rate(), 0.0);
        c.try_query(0, 1).unwrap();
        c.try_query(0, 1).unwrap();
        c.try_query(0, 1).unwrap();
        let stats = c.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2);
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn counters_account_exactly_under_concurrent_hammer() {
        // Regression for the check-then-insert race: the old code released
        // the shard lock between lookup and insert, so two threads missing
        // on the same key both computed and both counted a miss. With the
        // lock held across the miss path, a key that fits in the cache
        // misses exactly once, ever — and every request lands in exactly
        // one counter.
        let c = std::sync::Arc::new(cached(32, 4096));
        // 48 distinct canonical pairs, hammered by 8 threads; capacity is
        // far above the working set so nothing is ever evicted.
        let keys: Vec<(usize, usize)> = (0..48).map(|i| (i % 32, (i * 7 + 1) % 32)).collect();
        let unique: std::collections::HashSet<u64> =
            keys.iter().map(|&(u, v)| CachingOracle::<DistanceOracle>::key(u, v)).collect();
        let threads = 8;
        let per_thread = 3_000;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let c = std::sync::Arc::clone(&c);
                let keys = &keys;
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let (u, v) = keys[(i * 13 + t * 7) % keys.len()];
                        // Half the threads query the flipped pair to also
                        // exercise canonicalization under contention.
                        if t % 2 == 0 {
                            c.try_query(u, v).unwrap();
                        } else {
                            c.try_query(v, u).unwrap();
                        }
                    }
                });
            }
        });
        let stats = c.stats();
        let total = (threads * per_thread) as u64;
        assert_eq!(stats.hits + stats.misses, total, "every request must count exactly once");
        assert_eq!(
            stats.misses,
            unique.len() as u64,
            "each resident key must be computed exactly once (no double-compute race)"
        );
    }

    #[test]
    fn try_query_rejects_out_of_range_and_poisons_nothing() {
        let c = cached(16, 64);
        assert!(matches!(
            c.try_query(0, 16),
            Err(crate::OracleError::QueryOutOfRange { u: 0, v: 16, n: 16 })
        ));
        assert!(c.try_query_batch(&[(0, 1), (16, 0)]).is_err());
        // The rejection touched no shard lock and no counter...
        let stats = c.stats();
        assert_eq!((stats.hits, stats.misses), (0, 0));
        // ...and the cache still serves normally afterwards.
        assert_eq!(c.try_query(0, 1).unwrap(), c.oracle().try_query(0, 1).unwrap());
    }

    #[test]
    fn concurrent_queries_are_consistent() {
        let c = cached(32, 128);
        let pairs: Vec<(usize, usize)> = (0..4096).map(|i| (i % 32, (i * 17 + 3) % 32)).collect();
        let batch = c.try_query_batch(&pairs).unwrap();
        for (i, &(u, v)) in pairs.iter().enumerate() {
            assert_eq!(batch[i], c.oracle().try_query(u, v).unwrap());
        }
        let stats = c.stats();
        assert_eq!(stats.hits + stats.misses, 4096);
    }

    #[test]
    fn cache_stacks_over_a_shard_router() {
        // The cache is generic over the backend: fronting a ShardRouter
        // gives the router tier the pair cache the monolith always had.
        let oracle = build(24);
        let router = ShardedArtifact::partition(&oracle, 3).unwrap().into_router().unwrap();
        let c = CachingOracle::new(router, 512);
        for u in 0..24 {
            for v in 0..24 {
                assert_eq!(
                    c.try_query(u, v).unwrap(),
                    oracle.try_query(u, v).unwrap(),
                    "({u},{v})"
                );
            }
        }
        let stats = c.stats();
        assert!(stats.hits > 0, "diagonal + symmetric revisits must hit");
        assert_eq!(c.inner().n(), 24);
    }

    #[test]
    fn hottest_keys_are_mru_first_and_warm_replays_them() {
        let c = cached(32, 2048);
        // Touch 40 pairs, then re-touch a "hot" subset so it is most recent.
        for i in 0..40 {
            c.try_query(i % 32, (i * 7 + 1) % 32).unwrap();
        }
        let hot: Vec<(usize, usize)> = (0..6).map(|i| (i, (i * 7 + 1) % 32)).collect();
        for &(u, v) in &hot {
            c.try_query(u, v).unwrap();
        }
        let keys = c.hottest_keys(1024);
        assert!(!keys.is_empty());
        // Every hot pair must appear among the hottest keys (canonicalized).
        for &(u, v) in &hot {
            let canon = CachingOracle::<DistanceOracle>::key(u, v);
            assert!(
                keys.iter().any(|&(a, b)| CachingOracle::<DistanceOracle>::key(a, b) == canon),
                "hot pair ({u},{v}) missing from hottest_keys"
            );
        }
        // A bounded ask returns exactly that many.
        assert_eq!(c.hottest_keys(3).len(), 3);

        // Replay into a fresh cache over the same artifact: the warmed
        // pairs hit without ever missing, and warm-up itself counted
        // neither hits nor misses.
        let fresh = CachingOracle::new(c.oracle().clone(), 2048);
        let warmed = fresh.warm(&keys);
        assert_eq!(warmed, keys.len());
        assert_eq!(fresh.stats().hits, 0);
        assert_eq!(fresh.stats().misses, 0);
        assert_eq!(fresh.stats().len, keys.len());
        for &(u, v) in &keys {
            fresh.try_query(u, v).unwrap();
        }
        let stats = fresh.stats();
        assert_eq!(stats.misses, 0, "warmed keys must all hit");
        assert_eq!(stats.hits, keys.len() as u64);

        // Warming again is a no-op; out-of-range donors are skipped.
        assert_eq!(fresh.warm(&keys), 0);
        assert_eq!(fresh.warm(&[(0, 99), (99, 0)]), 0);
    }
}
