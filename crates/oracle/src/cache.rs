//! A bounded, sharded LRU result cache in front of the oracle.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use cc_matrix::Dist;

use crate::{DistanceOracle, OracleError};

/// Number of independently locked shards. A power of two so the shard pick
/// is a mask; 16 keeps contention low for the thread counts `query_batch`
/// uses without bloating per-shard bookkeeping.
const SHARDS: usize = 16;

/// Snapshot of cache effectiveness counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that fell through to the oracle.
    pub misses: u64,
    /// Entries currently resident (across all shards).
    pub len: usize,
    /// Maximum resident entries (across all shards).
    pub capacity: usize,
}

impl CacheStats {
    /// Fraction of queries served from the cache (0 when nothing was asked).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One LRU shard: a map from packed pair key to a slot in an intrusive
/// doubly-linked list ordered by recency (index-based, no unsafe).
struct Shard {
    map: HashMap<u64, usize>,
    /// Slot storage: `(key, value, prev, next)`; `usize::MAX` terminates.
    slots: Vec<(u64, u64, usize, usize)>,
    head: usize,
    tail: usize,
    capacity: usize,
}

const NIL: usize = usize::MAX;

impl Shard {
    fn new(capacity: usize) -> Shard {
        Shard {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn unlink(&mut self, slot: usize) {
        let (_, _, prev, next) = self.slots[slot];
        match prev {
            NIL => self.head = next,
            p => self.slots[p].3 = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].2 = prev,
        }
    }

    fn push_front(&mut self, slot: usize) {
        self.slots[slot].2 = NIL;
        self.slots[slot].3 = self.head;
        match self.head {
            NIL => self.tail = slot,
            h => self.slots[h].2 = slot,
        }
        self.head = slot;
    }

    fn get(&mut self, key: u64) -> Option<u64> {
        let slot = *self.map.get(&key)?;
        self.unlink(slot);
        self.push_front(slot);
        Some(self.slots[slot].1)
    }

    fn insert(&mut self, key: u64, value: u64) {
        if let Some(&slot) = self.map.get(&key) {
            self.slots[slot].1 = value;
            self.unlink(slot);
            self.push_front(slot);
            return;
        }
        let slot = if self.slots.len() < self.capacity {
            self.slots.push((key, value, NIL, NIL));
            self.slots.len() - 1
        } else {
            // Evict the least-recently-used entry and reuse its slot.
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(&self.slots[victim].0);
            self.slots[victim].0 = key;
            self.slots[victim].1 = value;
            victim
        };
        self.map.insert(key, slot);
        self.push_front(slot);
    }
}

/// A [`DistanceOracle`] fronted by a bounded, sharded LRU cache of query
/// results. Shards are locked independently, so concurrent querying threads
/// rarely contend; hit/miss counters are lock-free atomics.
///
/// # Example
///
/// ```
/// use cc_clique::Clique;
/// use cc_graph::generators;
/// use cc_oracle::{CachingOracle, OracleBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::gnp(32, 0.2, 1)?;
/// let mut clique = Clique::new(32);
/// let oracle = OracleBuilder::new().build(&mut clique, &g)?;
/// let cached = CachingOracle::new(oracle, 1024);
/// let first = cached.query(0, 31);
/// let second = cached.query(0, 31); // served from cache
/// assert_eq!(first, second);
/// assert_eq!(cached.stats().hits, 1);
/// # Ok(())
/// # }
/// ```
pub struct CachingOracle {
    oracle: DistanceOracle,
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CachingOracle {
    /// Wraps `oracle` with a cache holding at most `capacity` results
    /// (rounded up to at least one entry per shard).
    pub fn new(oracle: DistanceOracle, capacity: usize) -> CachingOracle {
        let per_shard = capacity.div_ceil(SHARDS).max(1);
        CachingOracle {
            oracle,
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::new(per_shard))).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The wrapped artifact.
    pub fn oracle(&self) -> &DistanceOracle {
        &self.oracle
    }

    /// Consumes the wrapper, returning the artifact.
    pub fn into_inner(self) -> DistanceOracle {
        self.oracle
    }

    fn key(u: usize, v: usize) -> u64 {
        // The oracle is symmetric, so canonicalize the pair: doubles the
        // effective capacity for undirected traffic.
        let (lo, hi) = if u <= v { (u, v) } else { (v, u) };
        ((lo as u64) << 32) | hi as u64
    }

    /// Cached [`DistanceOracle::query`]; identical answers, plus counters.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range, like the uncached query.
    pub fn query(&self, u: usize, v: usize) -> Dist {
        match self.try_query(u, v) {
            Ok(d) => d,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`CachingOracle::query`] for serving layers: out-of-range
    /// endpoints become [`OracleError::QueryOutOfRange`], never a panic (and
    /// never a poisoned shard lock — validation happens before locking).
    ///
    /// # Errors
    ///
    /// [`OracleError::QueryOutOfRange`] if `u` or `v` is out of range.
    pub fn try_query(&self, u: usize, v: usize) -> Result<Dist, OracleError> {
        self.oracle.check_pair(u, v)?;
        Ok(self.query_validated(u, v))
    }

    /// The cache lookup kernel; callers must have validated `u, v < n`.
    ///
    /// The shard lock is taken exactly once and held across the miss
    /// compute + insert: a second thread asking for the same key blocks
    /// briefly and then *hits*, so a result is never computed (or a miss
    /// counted) twice for one resident key. The oracle query is tens of
    /// nanoseconds, far cheaper than a second lock round-trip.
    fn query_validated(&self, u: usize, v: usize) -> Dist {
        let key = Self::key(u, v);
        let mut shard =
            self.shards[(key % SHARDS as u64) as usize].lock().expect("cache shard poisoned");
        if let Some(raw) = shard.get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return if raw == u64::MAX { Dist::INF } else { Dist::fin(raw) };
        }
        let answer = self.oracle.query_unchecked(u, v);
        self.misses.fetch_add(1, Ordering::Relaxed);
        shard.insert(key, answer.raw());
        answer
    }

    /// Cached batch query (shard-parallel like the uncached batch).
    ///
    /// # Panics
    ///
    /// Panics if any pair is out of range.
    pub fn query_batch(&self, pairs: &[(usize, usize)]) -> Vec<Dist> {
        match self.try_query_batch(pairs) {
            Ok(d) => d,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`CachingOracle::query_batch`]: validates every pair before
    /// computing anything.
    ///
    /// # Errors
    ///
    /// [`OracleError::QueryOutOfRange`] naming the first offending pair.
    pub fn try_query_batch(&self, pairs: &[(usize, usize)]) -> Result<Vec<Dist>, OracleError> {
        for &(u, v) in pairs {
            self.oracle.check_pair(u, v)?;
        }
        let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
        if threads <= 1 || pairs.len() < 1024 {
            return Ok(pairs.iter().map(|&(u, v)| self.query_validated(u, v)).collect());
        }
        let shard = pairs.len().div_ceil(threads);
        let mut out = vec![Dist::INF; pairs.len()];
        std::thread::scope(|scope| {
            for (chunk_in, chunk_out) in pairs.chunks(shard).zip(out.chunks_mut(shard)) {
                scope.spawn(move || {
                    for (slot, &(u, v)) in chunk_out.iter_mut().zip(chunk_in) {
                        *slot = self.query_validated(u, v);
                    }
                });
            }
        });
        Ok(out)
    }

    /// Current hit/miss/occupancy counters.
    pub fn stats(&self) -> CacheStats {
        let len =
            self.shards.iter().map(|s| s.lock().expect("cache shard poisoned").map.len()).sum();
        let capacity =
            self.shards.iter().map(|s| s.lock().expect("cache shard poisoned").capacity).sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            len,
            capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OracleBuilder;
    use cc_clique::Clique;
    use cc_graph::generators;

    fn cached(n: usize, capacity: usize) -> CachingOracle {
        let g = generators::gnp_weighted(n, 0.15, 20, 11).unwrap();
        let mut clique = Clique::new(n);
        let oracle = OracleBuilder::new().build(&mut clique, &g).unwrap();
        CachingOracle::new(oracle, capacity)
    }

    #[test]
    fn cached_answers_match_uncached() {
        // Capacity comfortably above the 528 unique canonical pairs, so the
        // second pass is served entirely from the cache.
        let c = cached(32, 2048);
        for u in 0..32 {
            for v in 0..32 {
                assert_eq!(c.query(u, v), c.oracle().query(u, v), "({u},{v})");
            }
        }
        let before = c.stats();
        for u in 0..32 {
            for v in 0..u {
                assert_eq!(c.query(u, v), c.oracle().query(u, v));
            }
        }
        let after = c.stats();
        assert_eq!(after.misses, before.misses, "second pass must not miss");
        assert!(after.hits > before.hits);
    }

    #[test]
    fn symmetric_pairs_share_one_entry() {
        let c = cached(16, 64);
        c.query(3, 7);
        c.query(7, 3);
        let stats = c.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn capacity_is_bounded_and_lru_evicts() {
        let c = cached(32, SHARDS); // one entry per shard
        for u in 0..32 {
            for v in 0..32 {
                c.query(u, v);
            }
        }
        let stats = c.stats();
        assert!(stats.len <= stats.capacity);
        assert_eq!(stats.capacity, SHARDS);
        // Everything evicted long ago: re-querying the first pair misses.
        let misses_before = c.stats().misses;
        c.query(0, 1);
        assert_eq!(c.stats().misses, misses_before + 1);
    }

    #[test]
    fn hit_rate_reflects_traffic() {
        let c = cached(16, 512);
        assert_eq!(c.stats().hit_rate(), 0.0);
        c.query(0, 1);
        c.query(0, 1);
        c.query(0, 1);
        let stats = c.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2);
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn counters_account_exactly_under_concurrent_hammer() {
        // Regression for the check-then-insert race: the old code released
        // the shard lock between lookup and insert, so two threads missing
        // on the same key both computed and both counted a miss. With the
        // lock held across the miss path, a key that fits in the cache
        // misses exactly once, ever — and every request lands in exactly
        // one counter.
        let c = std::sync::Arc::new(cached(32, 4096));
        // 48 distinct canonical pairs, hammered by 8 threads; capacity is
        // far above the working set so nothing is ever evicted.
        let keys: Vec<(usize, usize)> = (0..48).map(|i| (i % 32, (i * 7 + 1) % 32)).collect();
        let unique: std::collections::HashSet<u64> =
            keys.iter().map(|&(u, v)| CachingOracle::key(u, v)).collect();
        let threads = 8;
        let per_thread = 3_000;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let c = std::sync::Arc::clone(&c);
                let keys = &keys;
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let (u, v) = keys[(i * 13 + t * 7) % keys.len()];
                        // Half the threads query the flipped pair to also
                        // exercise canonicalization under contention.
                        if t % 2 == 0 {
                            c.query(u, v);
                        } else {
                            c.query(v, u);
                        }
                    }
                });
            }
        });
        let stats = c.stats();
        let total = (threads * per_thread) as u64;
        assert_eq!(stats.hits + stats.misses, total, "every request must count exactly once");
        assert_eq!(
            stats.misses,
            unique.len() as u64,
            "each resident key must be computed exactly once (no double-compute race)"
        );
    }

    #[test]
    fn try_query_rejects_out_of_range_and_poisons_nothing() {
        let c = cached(16, 64);
        assert!(matches!(
            c.try_query(0, 16),
            Err(crate::OracleError::QueryOutOfRange { u: 0, v: 16, n: 16 })
        ));
        assert!(c.try_query_batch(&[(0, 1), (16, 0)]).is_err());
        // The rejection touched no shard lock and no counter...
        let stats = c.stats();
        assert_eq!((stats.hits, stats.misses), (0, 0));
        // ...and the cache still serves normally afterwards.
        assert_eq!(c.try_query(0, 1).unwrap(), c.oracle().query(0, 1));
    }

    #[test]
    fn concurrent_queries_are_consistent() {
        let c = cached(32, 128);
        let pairs: Vec<(usize, usize)> = (0..4096).map(|i| (i % 32, (i * 17 + 3) % 32)).collect();
        let batch = c.query_batch(&pairs);
        for (i, &(u, v)) in pairs.iter().enumerate() {
            assert_eq!(batch[i], c.oracle().query(u, v));
        }
        let stats = c.stats();
        assert_eq!(stats.hits + stats.misses, 4096);
    }
}
