//! Test support: artifact-equality assertions shared by the in-crate unit
//! tests and the workspace-level differential suite
//! (`tests/build_equivalence.rs`).
//!
//! Hidden from the documented API surface — this is tooling for proving
//! the [`DirectBuilder`](crate::DirectBuilder) bit-identity contract, not
//! part of the serving interface.

use crate::{serde, DistanceOracle};

/// Asserts that two oracles are the **same artifact**: identical snapshot
/// payload bytes, hence identical build ids.
///
/// The header-only `build_rounds` field is excluded: the clique builder
/// counts simulated rounds while the direct builder records 0, and the
/// snapshot format deliberately keeps that provenance out of the payload
/// checksum. Everything else — parameters, landmarks, balls,
/// nearest-landmark rows, columns — must match byte for byte.
///
/// On mismatch, panics with the first divergent section named (parameters,
/// landmarks, nearest-landmark row, ball, or column), so a differential
/// failure points at the phase that drifted rather than at byte offset
/// 40213.
///
/// # Panics
///
/// Panics (with a section-level diagnostic) if the artifacts differ
/// anywhere outside `build_rounds`.
pub fn assert_same_artifact(a: &DistanceOracle, b: &DistanceOracle) {
    // Section-level diagnostics first: a byte diff without context is
    // useless when a 100k-node differential case fails.
    assert_eq!(
        (a.n(), a.k(), a.seed(), a.epsilon().to_bits()),
        (b.n(), b.k(), b.seed(), b.epsilon().to_bits()),
        "artifacts differ in build parameters"
    );
    assert_eq!(a.landmarks(), b.landmarks(), "artifacts differ in landmark selection");
    for v in 0..a.n() {
        assert_eq!(
            a.nearest_landmark[v], b.nearest_landmark[v],
            "artifacts differ in the nearest-landmark pick of node {v}"
        );
        assert_eq!(a.balls[v], b.balls[v], "artifacts differ in the ball of node {v}");
    }
    assert_eq!(a.columns, b.columns, "artifacts differ in the landmark columns");

    // The actual contract: identical payload bytes and checksum. (The
    // sections above are a refinement of this; if they all pass and this
    // fails, the serializer itself is nondeterministic — worth its own
    // loud message.)
    let (bytes_a, bytes_b) = (payload_bytes(a), payload_bytes(b));
    assert_eq!(
        serde::payload_checksum(a),
        serde::payload_checksum(b),
        "sections match but payload checksums differ: nondeterministic serializer?"
    );
    assert_eq!(bytes_a, bytes_b, "sections match but payload bytes differ");
}

/// The snapshot bytes with both provenance fields (`created_unix_secs` via
/// the API, `build_rounds` by zeroing a clone) pinned, so the comparison
/// covers exactly the payload-checksummed content plus the parameter
/// header fields.
fn payload_bytes(oracle: &DistanceOracle) -> Vec<u8> {
    let mut pinned = oracle.clone();
    pinned.build_rounds = 0;
    serde::to_bytes_created_at(&pinned, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_clique::Clique;
    use cc_graph::generators;

    #[test]
    fn accepts_same_artifact_with_different_build_rounds() {
        let g = generators::gnp_weighted(24, 0.2, 20, 3).unwrap();
        let mut clique = Clique::new(24);
        let a = crate::OracleBuilder::new().build(&mut clique, &g).unwrap();
        let mut b = a.clone();
        b.build_rounds = 0;
        assert_same_artifact(&a, &b);
    }

    #[test]
    #[should_panic(expected = "landmark selection")]
    fn rejects_differing_artifacts_by_section() {
        let g = generators::gnp_weighted(24, 0.2, 20, 3).unwrap();
        let mut clique = Clique::new(24);
        let a = crate::OracleBuilder::new().build(&mut clique, &g).unwrap();
        let mut b = a.clone();
        b.landmarks.push(23);
        assert_same_artifact(&a, &b);
    }
}
