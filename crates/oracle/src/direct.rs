//! The direct builder: the clique pipeline re-run as plain shared-memory
//! graph algorithms, bit-identical by construction.
//!
//! [`OracleBuilder`](crate::OracleBuilder) simulates every build phase
//! through the [`cc_clique::Clique`] message substrate — the right tool for
//! validating the paper's round complexity, but the simulation overhead caps
//! artifact sizes around `n ≈ 10³`. This module computes the *same
//! artifact* without any clique: sequential (or `std::thread`-parallel)
//! Dijkstra and Bellman–Ford over the same schedules the distributed phases
//! resolve.
//!
//! # The bit-identity contract
//!
//! In the default (faithful) mode, [`DirectBuilder`] produces a
//! [`DistanceOracle`] whose snapshot payload — and therefore its
//! `build_id` — is **byte-identical** to what `OracleBuilder` produces for
//! the same `(graph, k, ε, seed)`. This is not approximate agreement: every
//! ball entry, landmark id, nearest-landmark pick, and `(1+ε)` column is
//! the same `u64`. The contract holds because each phase shares its kernel
//! with the clique path instead of reimplementing it:
//!
//! * **k-nearest balls** — a truncated Dijkstra over the augmented order
//!   `(distance, hops, id)`; settling order equals the sorted order the
//!   distributed Theorem 18 tool ships, so the first `k` settles *are* the
//!   ball.
//! * **landmarks** — [`cc_distance::hitting_set_local`], the exact kernel
//!   the clique wrapper delegates to (Lemma 4's sampling + repair).
//! * **columns** — the hopset schedule comes from
//!   [`HopsetConfig::schedule`], the single source of truth shared with
//!   [`cc_hopset::build_hopset`]; bunches and level edges fold into a
//!   min-weight union exactly as the clique construction does (unions are
//!   elementwise minima, so insertion order is irrelevant); hop-`β`-bounded
//!   distances are Bellman–Ford with an exact fixed-point early stop —
//!   pinned equal to `source_detection_all` by the differential suite.
//! * **extraction** — `crate::builder::extract_artifact`, the same
//!   function the clique builder calls.
//!
//! The only field that differs is the header-only `build_rounds` (the
//! direct path has no rounds to count; it records 0), which is excluded
//! from the payload checksum. `tests/build_equivalence.rs` enforces the
//! contract over the full graph-family × seed × ε × k suite.
//!
//! # Capped mode
//!
//! [`DirectBuilder::max_landmarks`] trades the bit-identity contract for
//! scale: at `n = 10⁵..10⁶` the faithful landmark count (`O(n log n / k)`)
//! would make the column matrix astronomically large, so capped mode picks
//! `m` seeded-rank landmarks and computes *exact* per-landmark Dijkstra
//! columns (no hopset, hence better than `(1+ε)` — but a different
//! artifact than the clique build would produce). See `docs/BUILDERS.md`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use cc_distance::hitting_set_local;
use cc_graph::Graph;
use cc_hopset::{HopsetConfig, HopsetSchedule};
use cc_matrix::{AugDist, Dist};
use cc_telemetry::BuildTrace;

use crate::builder::{default_k, extract_artifact};
use crate::error::invalid;
use crate::{DistanceOracle, OracleError};

/// Order-preserving parallel map: `out[i] = f(i)` for `i in 0..count`,
/// computed on up to `threads` scoped std threads. The output is identical
/// for every thread count — parallelism never leaks into the artifact.
fn par_map<T: Send>(threads: usize, count: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    par_map_with(threads, count, || (), |(), i| f(i))
}

/// [`par_map`] with per-worker scratch state: each worker thread calls
/// `init` once and threads the value through its `f` calls. This keeps
/// `O(n)` scratch buffers out of the per-item path (a `vec![None; n]` per
/// node is an `O(n²)` build) without sharing mutable state across items —
/// the scratch must be reset by `f` itself, so results stay independent of
/// which worker computed them.
fn par_map_with<T: Send, S>(
    threads: usize,
    count: usize,
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, usize) -> T + Sync,
) -> Vec<T> {
    if threads <= 1 || count <= 1 {
        let mut scratch = init();
        return (0..count).map(|i| f(&mut scratch, i)).collect();
    }
    let mut out: Vec<Option<T>> = std::iter::repeat_with(|| None).take(count).collect();
    let chunk = count.div_ceil(threads);
    std::thread::scope(|scope| {
        for (ci, slots) in out.chunks_mut(chunk).enumerate() {
            let (init, f) = (&init, &f);
            scope.spawn(move || {
                let mut scratch = init();
                for (j, slot) in slots.iter_mut().enumerate() {
                    *slot = Some(f(&mut scratch, ci * chunk + j));
                }
            });
        }
    });
    out.into_iter().map(|slot| slot.expect("every chunk index was computed")).collect()
}

/// Reusable state for [`truncated_k_nearest`]: the settled-label array
/// (reset via the `touched` list — at most `k` entries per call) and the
/// frontier heap. One per worker thread, never shared.
struct NearScratch {
    best: Vec<Option<(u64, u32)>>,
    touched: Vec<usize>,
    heap: BinaryHeap<Reverse<(u64, u32, usize)>>,
}

impl NearScratch {
    fn new(n: usize) -> Self {
        NearScratch { best: vec![None; n], touched: Vec::new(), heap: BinaryHeap::new() }
    }
}

/// Node `src`'s `k`-nearest ball by truncated Dijkstra over the augmented
/// order `(distance, hops, id)`.
///
/// The heap pops in exactly that lexicographic order, so the first `k`
/// settled nodes equal `reference::k_nearest`'s sort-then-truncate — which
/// the distributed Theorem 18 tool is differentially pinned to.
fn truncated_k_nearest(
    g: &Graph,
    src: usize,
    k: usize,
    s: &mut NearScratch,
) -> Vec<(u32, AugDist)> {
    for &t in &s.touched {
        s.best[t] = None;
    }
    s.touched.clear();
    s.heap.clear();
    let mut ball = Vec::with_capacity(k.min(64));
    s.heap.push(Reverse((0u64, 0u32, src)));
    while let Some(Reverse((d, h, v))) = s.heap.pop() {
        if ball.len() == k {
            break;
        }
        match s.best[v] {
            Some(b) if b <= (d, h) => continue,
            _ => {}
        }
        s.best[v] = Some((d, h));
        s.touched.push(v);
        ball.push((v as u32, AugDist::fin(d, h)));
        for &(u, w) in g.neighbors(v) {
            let cand = (d.checked_add(w).expect("distance overflow"), h + 1);
            if s.best[u].is_none_or(|b| cand < b) {
                s.heap.push(Reverse((cand.0, cand.1, u)));
            }
        }
    }
    ball
}

/// Exact single-source distances by Dijkstra; `None` = unreachable.
fn dijkstra_exact(g: &Graph, src: usize) -> Vec<Option<u64>> {
    let mut best: Vec<Option<u64>> = vec![None; g.n()];
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0u64, src)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if best[v].is_some_and(|b| b <= d) {
            continue;
        }
        best[v] = Some(d);
        for &(u, w) in g.neighbors(v) {
            let cand = d.checked_add(w).expect("distance overflow");
            if best[u].is_none_or(|b| cand < b) {
                heap.push(Reverse((cand, u)));
            }
        }
    }
    best
}

/// Distances from `src` over walks of at most `hops` edges — the quantity
/// `source_detection_all` ships (`reference::hop_bounded` semantics).
///
/// When the hop budget covers every simple path (`hops ≥ n-1`) the bound is
/// vacuous and plain Dijkstra returns the same values faster. Otherwise:
/// Bellman–Ford rounds with a fixed-point early stop — once an iteration
/// changes nothing, all remaining iterations are no-ops, so stopping is
/// exact, not approximate.
fn hop_limited(g: &Graph, src: usize, hops: usize) -> Vec<Option<u64>> {
    if hops >= g.n().saturating_sub(1) {
        return dijkstra_exact(g, src);
    }
    let mut cur: Vec<Option<u64>> = vec![None; g.n()];
    cur[src] = Some(0);
    for _ in 0..hops {
        let mut next = cur.clone();
        let mut changed = false;
        for v in 0..g.n() {
            if let Some(d) = cur[v] {
                for &(u, w) in g.neighbors(v) {
                    let cand = d.checked_add(w).expect("distance overflow");
                    if next[u].is_none_or(|b| cand < b) {
                        next[u] = Some(cand);
                        changed = true;
                    }
                }
            }
        }
        cur = next;
        if !changed {
            break;
        }
    }
    cur
}

/// The direct re-run of [`cc_hopset::build_hopset`]: same schedule, same
/// hitting set, same bunch rule, same level rule — producing the same
/// min-weight union `G ∪ H` (and the `β` the columns are bounded by).
///
/// `Graph::add_edge` keeps the lighter weight on duplicates, so the union
/// is an elementwise minimum and the clique path's insertion bookkeeping
/// need not be replayed edge-for-edge.
fn direct_union_with_hopset(
    graph: &Graph,
    epsilon: f64,
    threads: usize,
) -> Result<(Graph, usize), OracleError> {
    let n = graph.n();
    let config = HopsetConfig::new(epsilon);
    let HopsetSchedule { k, beta, exploration, levels } = config.schedule(n);

    // Step 1: k-nearest + hitting set A1 (the hopset's own k, not the
    // oracle's ball size).
    let near = par_map_with(
        threads,
        n,
        || NearScratch::new(n),
        |s, v| truncated_k_nearest(graph, v, k, s),
    );
    let sets: Vec<Vec<usize>> =
        near.iter().map(|row| row.iter().map(|&(c, _)| c as usize).collect()).collect();
    let (a1, _repair) = hitting_set_local(&sets, k, config.seed)?;

    // Step 2: bunches B(v) = {u in N_k(v) : d(v,u) < d(v,A1)} ∪ {p(v)}.
    let mut union = graph.clone();
    for v in 0..n {
        if a1.contains(v) {
            continue;
        }
        let Some((p, pd)) = a1.closest_of(near[v].iter().map(|e| (e.0, &e.1))) else {
            continue; // isolated node: empty bunch
        };
        for entry in &near[v] {
            let u = entry.0 as usize;
            if (entry.1 < pd || u == p) && u != v {
                union.add_edge(v, u, entry.1.dist).expect("ball nodes are in range");
            }
        }
    }

    // Step 3: iterative levels — A1-to-A1 edges from bounded explorations
    // in G ∪ H^{l-1}. Each level's rows are computed against the union
    // *before* that level's edges land, mirroring the clique's
    // snapshot-then-update order.
    for _level in 0..levels {
        let rows =
            par_map(threads, a1.members.len(), |i| hop_limited(&union, a1.members[i], exploration));
        for (i, row) in rows.iter().enumerate() {
            let s = a1.members[i];
            for &t in &a1.members {
                if t != s {
                    if let Some(dw) = row[t] {
                        union.add_edge(s, t, dw).expect("members are in range");
                    }
                }
            }
        }
    }
    Ok((union, beta))
}

/// Builds a [`DistanceOracle`] directly — no [`cc_clique::Clique`], no
/// round simulation — with the same `k`/`ε`/`seed` knobs as
/// [`OracleBuilder`](crate::OracleBuilder) and a snapshot payload that is
/// byte-identical to the clique build's (see the [module docs](self)).
///
/// Dropping the simulation unlocks `10⁵`–`10⁶`-node artifacts: pair
/// [`max_landmarks`](Self::max_landmarks) (for a bounded column matrix)
/// with a small explicit [`k`](Self::k).
///
/// # Example
///
/// ```
/// use cc_clique::Clique;
/// use cc_graph::generators;
/// use cc_oracle::{serde, DirectBuilder, OracleBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::grid_weighted(6, 6, 20, 1)?;
/// let mut clique = Clique::new(36);
/// let via_clique = OracleBuilder::new().epsilon(0.5).seed(3).build(&mut clique, &g)?;
/// let direct = DirectBuilder::new().epsilon(0.5).seed(3).build(&g)?;
/// // Same payload bytes, same build id — not merely the same answers.
/// assert_eq!(serde::payload_checksum(&direct), serde::payload_checksum(&via_clique));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DirectBuilder {
    k: Option<usize>,
    epsilon: f64,
    seed: u64,
    threads: Option<usize>,
    max_landmarks: Option<usize>,
}

impl Default for DirectBuilder {
    fn default() -> Self {
        DirectBuilder { k: None, epsilon: 0.25, seed: 0, threads: None, max_landmarks: None }
    }
}

impl DirectBuilder {
    /// A builder with the same defaults as
    /// [`OracleBuilder::new`](crate::OracleBuilder::new): `k = ⌈√(n·ln n)⌉`,
    /// `ε = 0.25`, `seed = 0`, one worker per available core, faithful
    /// (uncapped) landmark selection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ball size `k` (default `⌈√(n·ln n)⌉`, clamped to `1..=n`).
    pub fn k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// MSSP accuracy `ε > 0`; the serving-phase stretch bound is `3(1+ε)`.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Seed for the deterministic landmark selection — the same seed the
    /// clique builder would use, selecting the same landmarks.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Worker-thread count (default: one per available core). The artifact
    /// is identical for every thread count; this only changes wall time.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// **Capped mode**: select at most `m` landmarks by seeded rank instead
    /// of the faithful hitting set, and compute exact Dijkstra columns
    /// (no hopset). Bounds the column matrix to `n × m` so million-node
    /// artifacts stay serveable — at the price of the bit-identity
    /// contract (the clique build would have picked different landmarks).
    pub fn max_landmarks(mut self, m: usize) -> Self {
        self.max_landmarks = Some(m);
        self
    }

    /// Runs the direct build. See [`build_traced`](Self::build_traced).
    ///
    /// # Errors
    ///
    /// Same conditions as [`build_traced`](Self::build_traced).
    pub fn build(&self, graph: &Graph) -> Result<DistanceOracle, OracleError> {
        self.build_traced(graph).map(|(oracle, _)| oracle)
    }

    /// Runs the direct build, returning the oracle plus a [`BuildTrace`]
    /// with one span per phase. Faithful mode reuses the clique phase
    /// names (`k_nearest_balls`, `hitting_set_landmarks`, `mssp_columns`,
    /// `local_extraction`) so dashboards and benches compare like for
    /// like; capped mode reports `landmark_selection` / `exact_columns`
    /// instead, making the different pipeline visible in the trace. All
    /// spans carry zero rounds: nothing is simulated.
    ///
    /// # Errors
    ///
    /// * [`OracleError::InvalidParameter`] for an empty graph, `ε ≤ 0`,
    ///   `k = 0`, `max_landmarks = 0`, or (capped mode) a node that
    ///   reaches no landmark;
    /// * [`OracleError::Build`] if the hitting-set kernel rejects its
    ///   input.
    pub fn build_traced(&self, graph: &Graph) -> Result<(DistanceOracle, BuildTrace), OracleError> {
        let n = graph.n();
        if n == 0 {
            return Err(invalid("oracle needs a non-empty graph"));
        }
        if self.epsilon <= 0.0 {
            return Err(invalid("oracle needs epsilon > 0"));
        }
        let k = self.k.unwrap_or_else(|| default_k(n)).min(n);
        if k == 0 {
            return Err(invalid("oracle needs k >= 1"));
        }
        if self.max_landmarks == Some(0) {
            return Err(invalid("max_landmarks must be >= 1"));
        }
        let threads = self
            .threads
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()))
            .max(1);

        let mut trace = BuildTrace::new();

        // Phase 1 — the oracle's k-nearest balls (same for both modes).
        let near = trace.time_local("k_nearest_balls", || {
            par_map_with(
                threads,
                n,
                || NearScratch::new(n),
                |s, v| truncated_k_nearest(graph, v, k, s),
            )
        });

        let oracle = match self.max_landmarks {
            None => self.build_faithful(graph, k, threads, &near, &mut trace)?,
            Some(m) => self.build_capped(graph, k, m, threads, &near, &mut trace)?,
        };
        Ok((oracle, trace))
    }

    /// Faithful mode: hitting-set landmarks + hopset-bounded columns —
    /// the bit-identical re-run of the clique pipeline.
    fn build_faithful(
        &self,
        graph: &Graph,
        k: usize,
        threads: usize,
        near: &[Vec<(u32, AugDist)>],
        trace: &mut BuildTrace,
    ) -> Result<DistanceOracle, OracleError> {
        let n = graph.n();

        // Phase 2 — Lemma 4 landmark selection, via the exact local kernel
        // the clique wrapper delegates to.
        let landmarks = trace.time_local("hitting_set_landmarks", || {
            let sets: Vec<Vec<usize>> =
                near.iter().map(|row| row.iter().map(|&(c, _)| c as usize).collect()).collect();
            hitting_set_local(&sets, k, self.seed)
        })?;
        let (landmarks, _repair) = landmarks;

        // Phase 3 — Theorem 3 columns: hopset union, then hop-β-bounded
        // distances from every landmark.
        let columns = trace.time_local("mssp_columns", || -> Result<Vec<u64>, OracleError> {
            let (union, beta) = direct_union_with_hopset(graph, self.epsilon, threads)?;
            let s = landmarks.len();
            let rows = par_map(threads, s, |i| hop_limited(&union, landmarks.members[i], beta));
            let mut columns = vec![Dist::INF.raw(); n * s];
            for (i, row) in rows.iter().enumerate() {
                for v in 0..n {
                    if let Some(dv) = row[v] {
                        columns[v * s + i] = dv;
                    }
                }
            }
            Ok(columns)
        })?;

        // Extraction — the kernel shared with the clique builder, which
        // leaves build_rounds at 0: the direct path simulates nothing (the
        // field is header-only and excluded from the payload checksum).
        Ok(trace.time_local("local_extraction", || {
            extract_artifact(n, k, self.epsilon, self.seed, near, &landmarks, columns)
        }))
    }

    /// Capped mode: `m` seeded-rank landmarks, exact Dijkstra columns.
    fn build_capped(
        &self,
        graph: &Graph,
        k: usize,
        m: usize,
        threads: usize,
        near: &[Vec<(u32, AugDist)>],
        trace: &mut BuildTrace,
    ) -> Result<DistanceOracle, OracleError> {
        let n = graph.n();

        // Phase 2 — seeded-rank selection: the m nodes of smallest mixed
        // rank, ids ascending. Deterministic in (seed, n, m) alone.
        let landmark_ids = trace.time_local("landmark_selection", || {
            let mut ranked: Vec<(u64, u32)> =
                (0..n).map(|v| (seeded_rank(self.seed, v as u64), v as u32)).collect();
            ranked.sort_unstable();
            ranked.truncate(m.min(n));
            let mut ids: Vec<u32> = ranked.into_iter().map(|(_, v)| v).collect();
            ids.sort_unstable();
            ids
        });
        let s = landmark_ids.len();

        // Phase 3 — exact per-landmark distances (no hopset: with m fixed
        // the column pass is m Dijkstras, already scalable).
        let rows = trace.time_local("exact_columns", || {
            par_map(threads, s, |i| dijkstra_exact(graph, landmark_ids[i] as usize))
        });

        let result =
            trace.time_local("local_extraction", || -> Result<DistanceOracle, OracleError> {
                let mut columns = vec![Dist::INF.raw(); n * s];
                let mut nearest_landmark: Vec<(u32, u64)> = Vec::with_capacity(n);
                for v in 0..n {
                    let mut pick: Option<(u64, u32)> = None;
                    for (i, row) in rows.iter().enumerate() {
                        if let Some(dv) = row[v] {
                            columns[v * s + i] = dv;
                            if pick.is_none_or(|p| (dv, i as u32) < p) {
                                pick = Some((dv, i as u32));
                            }
                        }
                    }
                    let Some((pd, pi)) = pick else {
                        return Err(invalid(format!(
                            "node {v} reaches no landmark; raise max_landmarks or use a \
                         connected graph"
                        )));
                    };
                    nearest_landmark.push((pi, pd));
                }
                let mut balls: Vec<Vec<(u32, u64)>> = Vec::with_capacity(n);
                for row in near {
                    let mut ball: Vec<(u32, u64)> = row.iter().map(|&(c, a)| (c, a.dist)).collect();
                    ball.sort_unstable_by_key(|&(id, _)| id);
                    balls.push(ball);
                }
                Ok(DistanceOracle {
                    n,
                    k,
                    epsilon: self.epsilon,
                    seed: self.seed,
                    build_rounds: 0,
                    landmarks: landmark_ids.clone(),
                    balls,
                    nearest_landmark,
                    columns,
                })
            })?;
        Ok(result)
    }
}

/// A 64-bit finalizer (xor-shift / multiply rounds) ranking nodes for the
/// capped-mode landmark draw. Stateless and platform-independent, so capped
/// builds are as reproducible as faithful ones — just not clique-identical.
fn seeded_rank(seed: u64, v: u64) -> u64 {
    let mut x = seed ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^ (x >> 33)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_clique::Clique;
    use cc_graph::{generators, reference};

    fn clique_build(g: &Graph, epsilon: f64, seed: u64) -> DistanceOracle {
        let mut clique = Clique::new(g.n());
        crate::OracleBuilder::new().epsilon(epsilon).seed(seed).build(&mut clique, g).unwrap()
    }

    #[test]
    fn truncated_k_nearest_matches_reference() {
        let g = generators::gnp_weighted(48, 0.12, 30, 11).unwrap();
        // One scratch across every call: stale state from a previous ball
        // must never leak into the next (the reset path is load-bearing).
        let mut scratch = NearScratch::new(48);
        for v in 0..48 {
            for k in [1, 3, 7, 48] {
                let fast: Vec<(usize, u64, u32)> = truncated_k_nearest(&g, v, k, &mut scratch)
                    .into_iter()
                    .map(|(c, a)| (c as usize, a.dist, a.hops))
                    .collect();
                assert_eq!(fast, reference::k_nearest(&g, v, k), "v={v} k={k}");
            }
        }
    }

    #[test]
    fn hop_limited_matches_reference_hop_bounded() {
        let g = generators::grid_weighted(5, 6, 20, 2).unwrap();
        for src in [0, 7, 29] {
            for beta in [1, 2, 5, 29, 30, 64] {
                assert_eq!(
                    hop_limited(&g, src, beta),
                    reference::hop_bounded(&g, src, beta),
                    "src={src} beta={beta}"
                );
            }
        }
    }

    #[test]
    fn faithful_build_is_bit_identical_to_the_clique_build() {
        let g = generators::gnp_weighted(40, 0.15, 25, 7).unwrap();
        let direct = DirectBuilder::new().epsilon(0.5).seed(9).build(&g).unwrap();
        let clique = clique_build(&g, 0.5, 9);
        crate::testkit::assert_same_artifact(&direct, &clique);
    }

    #[test]
    fn thread_count_never_changes_the_artifact() {
        let g = generators::road_like(8, 8, 30, 5).unwrap();
        let one = DirectBuilder::new().threads(1).build(&g).unwrap();
        for threads in [2, 3, 8] {
            let multi = DirectBuilder::new().threads(threads).build(&g).unwrap();
            crate::testkit::assert_same_artifact(&one, &multi);
        }
    }

    #[test]
    fn trace_phases_mirror_the_clique_names_with_zero_rounds() {
        let g = generators::gnp(32, 0.2, 3).unwrap();
        let (_, trace) = DirectBuilder::new().build_traced(&g).unwrap();
        let phases: Vec<&str> = trace.spans().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            phases,
            vec!["k_nearest_balls", "hitting_set_landmarks", "mssp_columns", "local_extraction"]
        );
        assert_eq!(trace.total_rounds(), 0, "nothing is simulated");
    }

    #[test]
    fn capped_mode_bounds_landmarks_and_stays_deterministic() {
        let g = generators::road_like(10, 10, 20, 3).unwrap();
        let (a, trace) = DirectBuilder::new().k(6).max_landmarks(8).build_traced(&g).unwrap();
        assert_eq!(a.landmarks().len(), 8);
        let phases: Vec<&str> = trace.spans().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            phases,
            vec!["k_nearest_balls", "landmark_selection", "exact_columns", "local_extraction"]
        );
        let b = DirectBuilder::new().k(6).max_landmarks(8).build(&g).unwrap();
        crate::testkit::assert_same_artifact(&a, &b);
        // Queries answer and never underestimate (columns are exact, balls
        // are exact; the via-landmark path is an upper bound).
        for u in 0..g.n() {
            let exact = reference::dijkstra(&g, u);
            for v in 0..g.n() {
                let est = a.try_query(u, v).unwrap().value().unwrap();
                assert!(est >= exact[v].unwrap());
            }
        }
    }

    #[test]
    fn capped_mode_errors_when_a_node_reaches_no_landmark() {
        // Two components; rank the landmarks so only one component is hit:
        // with m = 1 some node must fail to reach it.
        let g = Graph::from_edges(8, [(0, 1, 1), (2, 3, 1)]).unwrap();
        let err = DirectBuilder::new().k(2).max_landmarks(1).build(&g);
        assert!(err.is_err());
    }

    #[test]
    fn rejects_bad_parameters() {
        let g = generators::path(8).unwrap();
        assert!(DirectBuilder::new().epsilon(0.0).build(&g).is_err());
        assert!(DirectBuilder::new().k(0).build(&g).is_err());
        assert!(DirectBuilder::new().max_landmarks(0).build(&g).is_err());
        assert!(DirectBuilder::new().build(&Graph::empty(0)).is_err());
    }
}
