//! Shard a built oracle by contiguous node range and answer queries by
//! combining **two half-results** — exactly the way the monolithic
//! [`DistanceOracle::try_query`] combines them, so a [`ShardRouter`] is
//! bit-identical to the monolith it was partitioned from.
//!
//! The paper's artifact is "build once in the clique, query locally
//! forever"; at production scale one process cannot hold every node's ball.
//! The natural partition follows the construction itself:
//!
//! * **balls and nearest-landmark rows are per-node state** — shard them by
//!   contiguous node range ([`ShardPlan`]);
//! * **the landmark column matrix is global state the landmark regime needs
//!   for *both* endpoints** — replicate it to every shard, so a single
//!   shard can finish the landmark path for any pair it owns an endpoint
//!   of. Landmark columns are `n × s` with `s ≈ √(n·k)` — the replicated
//!   part shrinks relative to the sharded part as the deployment grows.
//!
//! A query `(u, v)` then decomposes into two [`HalfQuery`] lookups — one on
//! the shard owning `u`, one on the shard owning `v` (the same shard when
//! they are co-located) — and a pure [`combine`] step any router tier can
//! run. A manifest-driven `cc-serve` in sharded mode is that router tier
//! over HTTP.
//!
//! Per-shard snapshots (magic `CCSH`, the v2 header extended with shard
//! index/count and a set id) are in [`crate::serde`]:
//! [`crate::serde::to_shard_bytes`] / [`crate::serde::from_shard_bytes`].

use std::sync::Arc;

use cc_matrix::Dist;
use cc_telemetry::BuildTrace;

use crate::error::{invalid, set_mismatch};
use crate::oracle::MAX_FINITE_DISTANCE;
use crate::{DistanceOracle, OracleError};

/// A deterministic partition of `0..n` into `count` contiguous, balanced
/// node ranges. The plan is a pure function of `(n, count)`, so every
/// participant — partitioner, shard loader, router — recomputes the same
/// ranges instead of trusting a serialized copy.
///
/// The first `n % count` shards own one extra node, so range sizes differ
/// by at most one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    n: usize,
    count: usize,
}

impl ShardPlan {
    /// Plans `count` shards over `n` nodes.
    ///
    /// # Errors
    ///
    /// [`OracleError::InvalidParameter`] when `n == 0`, `count == 0`, or
    /// `count > n` (an empty shard would own no nodes and serve nothing).
    pub fn new(n: usize, count: usize) -> Result<ShardPlan, OracleError> {
        if n == 0 {
            return Err(invalid("shard plan over an empty node set (n = 0)"));
        }
        if count == 0 {
            return Err(invalid("shard count must be at least 1"));
        }
        if count > n {
            return Err(invalid(format!("shard count {count} exceeds node count {n}")));
        }
        Ok(ShardPlan { n, count })
    }

    /// Number of nodes the plan covers.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of shards.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The contiguous node range shard `index` owns.
    ///
    /// # Panics
    ///
    /// Panics if `index >= count`.
    pub fn range(&self, index: usize) -> std::ops::Range<usize> {
        assert!(index < self.count, "shard index {index} outside 0..{}", self.count);
        let base = self.n / self.count;
        let extra = self.n % self.count;
        let start = index * base + index.min(extra);
        let len = base + usize::from(index < extra);
        start..start + len
    }

    /// The shard owning node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn owner(&self, v: usize) -> usize {
        assert!(v < self.n, "node {v} outside 0..{}", self.n);
        let base = self.n / self.count;
        let extra = self.n % self.count;
        // The first `extra` shards each own `base + 1` nodes.
        let wide = extra * (base + 1);
        if v < wide {
            v / (base + 1)
        } else {
            extra + (v - wide) / base
        }
    }
}

/// One endpoint's contribution to a distance query: computable entirely on
/// the shard owning that endpoint, combinable by [`combine`] without any
/// further artifact access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HalfQuery {
    /// Exact distance if the *far* endpoint lies in the near endpoint's
    /// ball.
    pub ball: Option<u64>,
    /// The landmark-regime candidate `d(near, p(near)) + d̃(p(near), far)`,
    /// already clamped to [`MAX_FINITE_DISTANCE`]; `None` when the far
    /// endpoint is unreachable from the near endpoint's nearest landmark.
    pub via_landmark: Option<u64>,
}

/// Combines the two half-results for a pair `(u, v)` with `u != v` exactly
/// as [`DistanceOracle::try_query`] does: `u`'s ball is consulted first, then
/// `v`'s (both are exact, so the order only matters for symmetry of the
/// code path, not the answer), then the smaller landmark candidate;
/// [`Dist::INF`] when neither endpoint reaches the other through a ball or
/// a landmark.
pub fn combine(u_half: HalfQuery, v_half: HalfQuery) -> Dist {
    if let Some(d) = u_half.ball {
        return Dist::fin(d);
    }
    if let Some(d) = v_half.ball {
        return Dist::fin(d);
    }
    match (u_half.via_landmark, v_half.via_landmark) {
        (Some(a), Some(b)) => Dist::fin(a.min(b)),
        (Some(a), None) => Dist::fin(a),
        (None, Some(b)) => Dist::fin(b),
        (None, None) => Dist::INF,
    }
}

/// One shard of a partitioned oracle: the balls and nearest-landmark rows
/// of its contiguous node range, plus the **replicated** landmark list and
/// full `n × s` column matrix, so [`OracleShard::half_query`] never needs
/// another shard.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleShard {
    pub(crate) index: u32,
    pub(crate) count: u32,
    /// First node this shard owns (== `plan().range(index).start`).
    pub(crate) start: usize,
    pub(crate) n: usize,
    pub(crate) k: usize,
    pub(crate) epsilon: f64,
    pub(crate) seed: u64,
    pub(crate) build_rounds: u64,
    /// Identity of the parent artifact: the monolithic payload checksum
    /// (`serde::payload_checksum`), shared by every shard of one set.
    pub(crate) set_id: u64,
    /// Replicated: landmark node ids, ascending.
    pub(crate) landmarks: Vec<u32>,
    /// Owned nodes only, indexed by `node - start`.
    pub(crate) balls: Vec<Vec<(u32, u64)>>,
    /// Owned nodes only, indexed by `node - start`.
    pub(crate) nearest_landmark: Vec<(u32, u64)>,
    /// Replicated: the full row-major `n × s` landmark column matrix.
    pub(crate) columns: Vec<u64>,
}

impl OracleShard {
    /// This shard's index within its set.
    pub fn index(&self) -> usize {
        self.index as usize
    }

    /// Number of shards in the set this shard belongs to.
    pub fn count(&self) -> usize {
        self.count as usize
    }

    /// Total node count of the parent artifact (not just this shard).
    pub fn n(&self) -> usize {
        self.n
    }

    /// The ball-size parameter `k` of the parent build.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The MSSP accuracy parameter `ε` of the parent build.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The documented multiplicative stretch bound `3·(1+ε)` of the parent
    /// build, matching [`DistanceOracle::stretch_bound`].
    pub fn stretch_bound(&self) -> f64 {
        3.0 * (1.0 + self.epsilon)
    }

    /// The landmark-selection seed of the parent build.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Clique rounds the parent build charged.
    pub fn build_rounds(&self) -> u64 {
        self.build_rounds
    }

    /// Identity of the parent artifact (its payload checksum); every shard
    /// of one set carries the same value.
    pub fn set_id(&self) -> u64 {
        self.set_id
    }

    /// The replicated landmark node ids (ascending).
    pub fn landmarks(&self) -> &[u32] {
        &self.landmarks
    }

    /// The contiguous node range this shard owns.
    pub fn owned(&self) -> std::ops::Range<usize> {
        self.start..self.start + self.balls.len()
    }

    /// The partition this shard belongs to.
    pub fn plan(&self) -> ShardPlan {
        ShardPlan { n: self.n, count: self.count as usize }
    }

    /// Heap footprint of this shard in bytes (owned balls + rows, plus the
    /// replicated landmarks and columns), for capacity planning.
    pub fn artifact_bytes(&self) -> usize {
        let ball_entries: usize = self.balls.iter().map(Vec::len).sum();
        ball_entries * std::mem::size_of::<(u32, u64)>()
            + self.columns.len() * 8
            + self.landmarks.len() * 4
            + self.nearest_landmark.len() * std::mem::size_of::<(u32, u64)>()
    }

    /// The half-result for the pair `(near, far)` seen from `near`'s side.
    /// Every lookup touches only this shard's data: `near`'s ball (is `far`
    /// inside?), `near`'s nearest-landmark row, and the replicated column
    /// of `far`.
    ///
    /// # Panics
    ///
    /// Panics if `near` is not owned by this shard or `far` is not in
    /// `0..n`; routers must validate first (see [`ShardRouter::try_query`]).
    pub fn half_query(&self, near: usize, far: usize) -> HalfQuery {
        let owned = self.owned();
        assert!(
            owned.contains(&near),
            "node {near} is not owned by shard {} ({owned:?})",
            self.index
        );
        assert!(far < self.n, "node {far} outside 0..{}", self.n);
        let local = near - self.start;
        let ball = &self.balls[local];
        let ball_hit =
            ball.binary_search_by_key(&(far as u32), |&(id, _)| id).ok().map(|i| ball[i].1);
        let (idx, to_landmark) = self.nearest_landmark[local];
        let col = self.columns[far * self.landmarks.len() + idx as usize];
        // Mirror the monolithic query kernel exactly: a landmark sum that
        // reaches or overflows the u64::MAX sentinel is clamped to the
        // largest finite value, never reported as "disconnected".
        let via_landmark = (col != Dist::INF.raw()).then(|| {
            to_landmark.checked_add(col).map_or(MAX_FINITE_DISTANCE, |s| s.min(MAX_FINITE_DISTANCE))
        });
        HalfQuery { ball: ball_hit, via_landmark }
    }
}

/// A monolithic oracle partitioned into per-shard slices, ready to be
/// snapshotted per shard ([`crate::serde::to_shard_bytes`]) or routed
/// in-process ([`ShardedArtifact::into_router`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedArtifact {
    shards: Vec<OracleShard>,
}

impl ShardedArtifact {
    /// Partitions `oracle` into `count` shards along a [`ShardPlan`].
    ///
    /// The per-node state (balls, nearest-landmark rows) is split by node
    /// range; the landmark list and column matrix are replicated into every
    /// shard; every shard carries the parent's payload checksum as its
    /// `set_id`.
    ///
    /// # Errors
    ///
    /// [`OracleError::InvalidParameter`] for an impossible plan (see
    /// [`ShardPlan::new`]).
    pub fn partition(
        oracle: &DistanceOracle,
        count: usize,
    ) -> Result<ShardedArtifact, OracleError> {
        Self::partition_traced(oracle, count).map(|(artifact, _)| artifact)
    }

    /// Like [`partition`](Self::partition), but also returns a
    /// [`BuildTrace`] with one span per phase: the set-id checksum pass
    /// plus one span per shard slice, each reporting the words of
    /// artifact state copied into that slice (per-node state sliced by
    /// range, landmark list and column matrix replicated). Partitioning
    /// is purely local, so every span charges zero clique rounds.
    ///
    /// # Errors
    ///
    /// Same conditions as [`partition`](Self::partition).
    pub fn partition_traced(
        oracle: &DistanceOracle,
        count: usize,
    ) -> Result<(ShardedArtifact, BuildTrace), OracleError> {
        let mut trace = BuildTrace::new();
        let plan = ShardPlan::new(oracle.n(), count)?;
        // Timing goes through the BuildTrace helpers so this kernel file
        // never reads a clock itself (cc-lint `determinism`).
        let set_id =
            trace.time_local("shard_set_id_checksum", || crate::serde::payload_checksum(oracle));
        let shards: Vec<OracleShard> = (0..count)
            .map(|i| {
                trace.time_local_words(&format!("partition_shard_{i}"), || {
                    let range = plan.range(i);
                    let shard = OracleShard {
                        index: i as u32,
                        count: count as u32,
                        start: range.start,
                        n: oracle.n,
                        k: oracle.k,
                        epsilon: oracle.epsilon,
                        seed: oracle.seed,
                        build_rounds: oracle.build_rounds,
                        set_id,
                        landmarks: oracle.landmarks.clone(),
                        balls: oracle.balls[range.clone()].to_vec(),
                        nearest_landmark: oracle.nearest_landmark[range].to_vec(),
                        columns: oracle.columns.clone(),
                    };
                    let ball_words: usize = shard.balls.iter().map(|b| b.len() * 2).sum();
                    let words = (ball_words
                        + shard.columns.len()
                        + shard.landmarks.len()
                        + shard.nearest_landmark.len() * 2) as u64;
                    (shard, words)
                })
            })
            .collect();
        Ok((ShardedArtifact { shards }, trace))
    }

    /// The partition underlying this artifact.
    pub fn plan(&self) -> ShardPlan {
        self.shards[0].plan()
    }

    /// The per-shard slices, in index order.
    pub fn shards(&self) -> &[OracleShard] {
        &self.shards
    }

    /// Consumes the artifact, returning the slices in index order (e.g. to
    /// snapshot each to its own file).
    pub fn into_shards(self) -> Vec<OracleShard> {
        self.shards
    }

    /// Wraps the slices in an in-process [`ShardRouter`].
    ///
    /// # Errors
    ///
    /// As [`ShardRouter::assemble`] (cannot actually fail for an artifact
    /// produced by [`ShardedArtifact::partition`]).
    pub fn into_router(self) -> Result<ShardRouter, OracleError> {
        ShardRouter::assemble(self.shards)
    }
}

/// Validates that `shards` form one complete, consistent set: slot `i`
/// holds the shard declaring index `i`, every shard declares the same
/// count/`n`/`k`/`ε`/landmarks/set id, and every shard's owned range
/// matches the recomputed [`ShardPlan`]. Returns the plan.
///
/// This is the startup gate for any router tier: a shard file from a
/// different artifact generation (or the right file in the wrong slot)
/// must fail **here**, not by serving subtly wrong distances.
///
/// Accepts owned shards or references (`&[OracleShard]` and
/// `&[&OracleShard]` both work), so a caller holding shards inside larger
/// structs can validate without cloning the replicated column matrices.
///
/// # Errors
///
/// * [`OracleError::ShardIndexMismatch`] — shard `i`'s slot holds a file
///   declaring a different index.
/// * [`OracleError::ShardSetMismatch`] — wrong number of shards, or any
///   disagreement on `count`/`n`/`k`/`ε`/landmarks/set id.
/// * [`OracleError::CorruptSnapshot`] — a shard's owned range does not
///   match the plan (possible only for hand-built shards; the snapshot
///   reader already enforces this).
pub fn validate_set<S: std::borrow::Borrow<OracleShard>>(
    shards: &[S],
) -> Result<ShardPlan, OracleError> {
    let first = shards.first().ok_or_else(|| set_mismatch("empty shard set"))?.borrow();
    if shards.len() != first.count() {
        return Err(set_mismatch(format!(
            "set declares {} shards but {} were provided",
            first.count(),
            shards.len()
        )));
    }
    let plan = first.plan();
    for (i, shard) in shards.iter().enumerate() {
        let shard = shard.borrow();
        if shard.index() != i {
            return Err(OracleError::ShardIndexMismatch { expected: i as u32, found: shard.index });
        }
        let mismatch = |what: &str, got: String, want: String| {
            set_mismatch(format!("shard {i}: {what} = {got} but the set has {what} = {want}"))
        };
        if shard.count != first.count {
            return Err(mismatch("shard count", shard.count.to_string(), first.count.to_string()));
        }
        if shard.n != first.n {
            return Err(mismatch("n", shard.n.to_string(), first.n.to_string()));
        }
        if shard.k != first.k {
            return Err(mismatch("k", shard.k.to_string(), first.k.to_string()));
        }
        if shard.epsilon.to_bits() != first.epsilon.to_bits() {
            return Err(mismatch("epsilon", shard.epsilon.to_string(), first.epsilon.to_string()));
        }
        if shard.set_id != first.set_id {
            return Err(mismatch(
                "set id",
                format!("{:016x}", shard.set_id),
                format!("{:016x}", first.set_id),
            ));
        }
        if shard.landmarks != first.landmarks {
            return Err(set_mismatch(format!(
                "shard {i}: landmark set differs from the set's ({} vs {} landmarks)",
                shard.landmarks.len(),
                first.landmarks.len()
            )));
        }
        let want = plan.range(i);
        if shard.owned() != want {
            return Err(crate::error::corrupt(format!(
                "shard {i} owns {:?} but the plan assigns {want:?}",
                shard.owned()
            )));
        }
    }
    Ok(plan)
}

/// Routes distance queries over a complete, validated shard set, combining
/// the two per-endpoint half-results exactly as the monolithic
/// [`DistanceOracle::try_query`] would — the equivalence the
/// `tests/shard_equivalence.rs` suite pins down bit-for-bit.
///
/// # Example
///
/// ```
/// use cc_clique::Clique;
/// use cc_graph::generators;
/// use cc_oracle::{OracleBuilder, ShardedArtifact};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::gnp_weighted(24, 0.2, 30, 7)?;
/// let mut clique = Clique::new(24);
/// let oracle = OracleBuilder::new().build(&mut clique, &g)?;
///
/// let router = ShardedArtifact::partition(&oracle, 3)?.into_router()?;
/// for u in 0..24 {
///     for v in 0..24 {
///         assert_eq!(router.try_query(u, v)?, oracle.try_query(u, v)?);
///     }
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRouter {
    plan: ShardPlan,
    /// `Arc` so a serving layer can roll one slice without deep-copying the
    /// others (each slice carries the replicated column matrix); see
    /// [`ShardRouter::with_shard_replaced`].
    shards: Vec<Arc<OracleShard>>,
}

impl ShardRouter {
    /// Builds a router from the full shard set, validating it first (see
    /// [`validate_set`]).
    ///
    /// # Errors
    ///
    /// Everything [`validate_set`] rejects.
    pub fn assemble(shards: Vec<OracleShard>) -> Result<ShardRouter, OracleError> {
        ShardRouter::assemble_shared(shards.into_iter().map(Arc::new).collect())
    }

    /// [`ShardRouter::assemble`] over already-shared slices: no copy, same
    /// strict validation.
    ///
    /// # Errors
    ///
    /// Everything [`validate_set`] rejects.
    pub fn assemble_shared(shards: Vec<Arc<OracleShard>>) -> Result<ShardRouter, OracleError> {
        let plan = validate_set(&shards)?;
        Ok(ShardRouter { plan, shards })
    }

    /// Assembles a possibly **mixed-generation** set — the rolling-rollout
    /// state, where some slices were already swapped to a new artifact
    /// build and others still serve the old one.
    ///
    /// Shape is non-negotiable and checked exactly like the strict path:
    /// every slice must declare its slot, the shared shard count and `n`,
    /// and own the range the recomputed [`ShardPlan`] assigns. What is
    /// *not* required is agreement on set id, `k`, `ε`, or the landmark
    /// set: each half-query is computed entirely within one slice, so a
    /// mixed set stays sound pair-by-pair while
    /// [`ShardRouter::set_uniform`] reports the roll's progress.
    ///
    /// # Errors
    ///
    /// * [`OracleError::ShardIndexMismatch`] — a slice in the wrong slot.
    /// * [`OracleError::ShardSetMismatch`] — wrong number of slices, or a
    ///   disagreement on shard count or `n`.
    /// * [`OracleError::CorruptSnapshot`] — a slice's owned range does not
    ///   match the plan.
    pub fn assemble_rolling(shards: Vec<Arc<OracleShard>>) -> Result<ShardRouter, OracleError> {
        let first = shards.first().ok_or_else(|| set_mismatch("empty shard set"))?;
        if shards.len() != first.count() {
            return Err(set_mismatch(format!(
                "set declares {} shards but {} were provided",
                first.count(),
                shards.len()
            )));
        }
        let plan = first.plan();
        for (i, shard) in shards.iter().enumerate() {
            if shard.index() != i {
                return Err(OracleError::ShardIndexMismatch {
                    expected: i as u32,
                    found: shard.index,
                });
            }
            if shard.count != first.count {
                return Err(set_mismatch(format!(
                    "shard {i}: shard count = {} but the set has shard count = {}",
                    shard.count, first.count
                )));
            }
            if shard.n != first.n {
                return Err(set_mismatch(format!(
                    "shard {i}: n = {} but the set has n = {}",
                    shard.n, first.n
                )));
            }
            let want = plan.range(i);
            if shard.owned() != want {
                return Err(crate::error::corrupt(format!(
                    "shard {i} owns {:?} but the plan assigns {want:?}",
                    shard.owned()
                )));
            }
        }
        Ok(ShardRouter { plan, shards })
    }

    /// The partition this router routes over.
    pub fn plan(&self) -> ShardPlan {
        self.plan
    }

    /// Number of nodes the routed artifact covers.
    pub fn n(&self) -> usize {
        self.plan.n()
    }

    /// The per-shard slices, in index order.
    pub fn shards(&self) -> &[Arc<OracleShard>] {
        &self.shards
    }

    /// True when every slice carries the same set id — i.e. no rolling
    /// rollout is in flight.
    pub fn set_uniform(&self) -> bool {
        self.shards.windows(2).all(|w| w[0].set_id == w[1].set_id)
    }

    /// Distance estimate for `(u, v)`: two half-queries on the owning
    /// shards, combined exactly like the monolithic query kernel.
    ///
    /// # Errors
    ///
    /// [`OracleError::QueryOutOfRange`] if `u` or `v` is not in `0..n`.
    pub fn try_query(&self, u: usize, v: usize) -> Result<Dist, OracleError> {
        let n = self.plan.n();
        if u >= n || v >= n {
            return Err(OracleError::QueryOutOfRange { u, v, n });
        }
        if u == v {
            return Ok(Dist::ZERO);
        }
        let u_half = self.shards[self.plan.owner(u)].half_query(u, v);
        let v_half = self.shards[self.plan.owner(v)].half_query(v, u);
        Ok(combine(u_half, v_half))
    }

    /// Answers a batch of queries in request order.
    ///
    /// # Errors
    ///
    /// [`OracleError::QueryOutOfRange`] naming the first offending pair;
    /// like the monolithic batch, either the whole batch is answered or
    /// nothing is computed.
    pub fn try_query_batch(&self, pairs: &[(usize, usize)]) -> Result<Vec<Dist>, OracleError> {
        let n = self.plan.n();
        for &(u, v) in pairs {
            if u >= n || v >= n {
                return Err(OracleError::QueryOutOfRange { u, v, n });
            }
        }
        // Pairs are validated above, so per-pair errors are unreachable;
        // collecting into Result propagates them instead of panicking.
        pairs.iter().map(|&(u, v)| self.try_query(u, v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OracleBuilder;
    use cc_clique::Clique;
    use cc_graph::generators;

    fn build(n: usize, seed: u64) -> DistanceOracle {
        let g = generators::gnp_weighted(n, 0.15, 30, seed).unwrap();
        let mut clique = Clique::new(n);
        OracleBuilder::new().seed(seed).build(&mut clique, &g).unwrap()
    }

    #[test]
    fn plan_ranges_are_contiguous_balanced_and_invertible() {
        for n in [1usize, 2, 3, 7, 16, 31, 64, 100] {
            for count in 1..=n.min(9) {
                let plan = ShardPlan::new(n, count).unwrap();
                let mut next = 0usize;
                for i in 0..count {
                    let range = plan.range(i);
                    assert_eq!(range.start, next, "ranges must tile 0..n in order");
                    let len = range.len();
                    assert!(
                        (n / count..=n.div_ceil(count)).contains(&len),
                        "n={n} count={count} shard {i}: unbalanced range {range:?}"
                    );
                    for v in range.clone() {
                        assert_eq!(plan.owner(v), i, "owner({v}) for n={n} count={count}");
                    }
                    next = range.end;
                }
                assert_eq!(next, n, "ranges must cover every node");
            }
        }
    }

    #[test]
    fn plan_rejects_degenerate_shapes() {
        assert!(ShardPlan::new(0, 1).is_err());
        assert!(ShardPlan::new(8, 0).is_err());
        assert!(ShardPlan::new(8, 9).is_err());
        assert!(ShardPlan::new(8, 8).is_ok());
    }

    #[test]
    fn router_is_bit_identical_to_the_monolith() {
        let oracle = build(33, 5);
        for count in [1usize, 2, 3, 7] {
            let router = ShardedArtifact::partition(&oracle, count).unwrap().into_router().unwrap();
            for u in 0..33 {
                for v in 0..33 {
                    assert_eq!(
                        router.try_query(u, v).unwrap(),
                        oracle.try_query(u, v).unwrap(),
                        "({u},{v}) with {count} shards"
                    );
                }
            }
        }
    }

    #[test]
    fn router_reports_infinity_exactly_where_the_monolith_does() {
        // Two components; every cross-component pair is disconnected.
        let g =
            cc_graph::Graph::from_edges(9, [(0, 1, 2), (1, 2, 3), (4, 5, 1), (5, 6, 9)]).unwrap();
        let mut clique = Clique::new(9);
        let oracle = OracleBuilder::new().build(&mut clique, &g).unwrap();
        for count in [1usize, 2, 3] {
            let router = ShardedArtifact::partition(&oracle, count).unwrap().into_router().unwrap();
            for u in 0..9 {
                for v in 0..9 {
                    assert_eq!(
                        router.try_query(u, v).unwrap(),
                        oracle.try_query(u, v).unwrap(),
                        "({u},{v}) x{count}"
                    );
                }
            }
        }
    }

    /// The 3-node near-`u64::MAX` path artifact from the monolithic clamp
    /// regression tests, partitioned: the clamped landmark sum must come
    /// out of the router bit-identically.
    #[test]
    fn near_max_clamped_sums_survive_sharding() {
        let w = u64::MAX - 3;
        let oracle = DistanceOracle {
            n: 3,
            k: 1,
            epsilon: 0.25,
            seed: 0,
            build_rounds: 0,
            landmarks: vec![1],
            balls: vec![vec![(0, 0)], vec![(1, 0)], vec![(2, 0)]],
            nearest_landmark: vec![(0, w), (0, 0), (0, w)],
            columns: vec![w, 0, w],
        };
        for count in [1usize, 2, 3] {
            let router = ShardedArtifact::partition(&oracle, count).unwrap().into_router().unwrap();
            assert_eq!(router.try_query(0, 2).unwrap(), Dist::fin(MAX_FINITE_DISTANCE), "x{count}");
            for u in 0..3 {
                for v in 0..3 {
                    assert_eq!(
                        router.try_query(u, v).unwrap(),
                        oracle.try_query(u, v).unwrap(),
                        "({u},{v}) x{count}"
                    );
                }
            }
        }
    }

    #[test]
    fn try_query_validates_like_the_monolith() {
        let oracle = build(16, 3);
        let router = ShardedArtifact::partition(&oracle, 2).unwrap().into_router().unwrap();
        assert!(matches!(
            router.try_query(0, 16),
            Err(OracleError::QueryOutOfRange { u: 0, v: 16, n: 16 })
        ));
        assert!(matches!(router.try_query(99, 0), Err(OracleError::QueryOutOfRange { .. })));
        let pairs: Vec<(usize, usize)> = (0..16).map(|i| (i, (i * 5 + 2) % 16)).collect();
        assert_eq!(
            router.try_query_batch(&pairs).unwrap(),
            oracle.try_query_batch(&pairs).unwrap()
        );
        let mut bad = pairs;
        bad.push((3, 16));
        assert!(router.try_query_batch(&bad).is_err());
    }

    #[test]
    fn assemble_rejects_wrong_slots_and_mixed_sets() {
        let oracle = build(20, 9);
        let shards = ShardedArtifact::partition(&oracle, 2).unwrap().into_shards();

        // Shard 1's file offered as shard 0: index mismatch, named.
        let swapped = vec![shards[1].clone(), shards[0].clone()];
        assert!(matches!(
            ShardRouter::assemble(swapped),
            Err(OracleError::ShardIndexMismatch { expected: 0, found: 1 })
        ));

        // An incomplete set.
        assert!(matches!(
            ShardRouter::assemble(vec![shards[0].clone()]),
            Err(OracleError::ShardSetMismatch { .. })
        ));

        // A shard from a different artifact generation (different set id).
        let other = build(20, 10);
        let other_shards = ShardedArtifact::partition(&other, 2).unwrap().into_shards();
        let mixed = vec![shards[0].clone(), other_shards[1].clone()];
        match ShardRouter::assemble(mixed) {
            Err(OracleError::ShardSetMismatch { what }) => {
                assert!(what.contains("set id"), "must name the field: {what}");
            }
            other => panic!("mixed set must be rejected, got {other:?}"),
        }

        // A shard claiming a different n.
        let bigger = build(24, 9);
        let bigger_shards = ShardedArtifact::partition(&bigger, 2).unwrap().into_shards();
        let mixed_n = vec![shards[0].clone(), bigger_shards[1].clone()];
        assert!(matches!(
            ShardRouter::assemble(mixed_n),
            Err(OracleError::ShardSetMismatch { .. })
        ));

        // The untouched set still assembles.
        assert!(ShardRouter::assemble(shards).is_ok());
    }

    #[test]
    fn rolling_assembly_accepts_mixed_sets_but_not_wrong_shapes() {
        let a = build(20, 9);
        let b = build(20, 10);
        let to_arcs = |oracle: &DistanceOracle| -> Vec<Arc<OracleShard>> {
            ShardedArtifact::partition(oracle, 2)
                .unwrap()
                .into_shards()
                .into_iter()
                .map(Arc::new)
                .collect()
        };
        let a_shards = to_arcs(&a);
        let b_shards = to_arcs(&b);

        // The strict path refuses the mix; the rolling path accepts it and
        // reports the non-uniform state.
        let mixed = vec![a_shards[0].clone(), b_shards[1].clone()];
        assert!(ShardRouter::assemble_shared(mixed.clone()).is_err());
        let rolling = ShardRouter::assemble_rolling(mixed).unwrap();
        assert!(!rolling.set_uniform());
        let uniform = ShardRouter::assemble_rolling(a_shards.clone()).unwrap();
        assert!(uniform.set_uniform());

        // Every answer of the mixed router is the combine of exactly the
        // two slices that own the endpoints — each half from its own
        // generation, never a blend within a half.
        let plan = rolling.plan();
        let slices = [&a_shards[0], &b_shards[1]];
        for u in 0..20 {
            for v in 0..20 {
                let want = if u == v {
                    Dist::ZERO
                } else {
                    combine(
                        slices[plan.owner(u)].half_query(u, v),
                        slices[plan.owner(v)].half_query(v, u),
                    )
                };
                assert_eq!(rolling.try_query(u, v).unwrap(), want, "({u},{v})");
            }
        }

        // Shape violations are still hard errors.
        let swapped = vec![a_shards[1].clone(), a_shards[0].clone()];
        assert!(matches!(
            ShardRouter::assemble_rolling(swapped),
            Err(OracleError::ShardIndexMismatch { expected: 0, found: 1 })
        ));
        let other_n = to_arcs(&build(24, 9));
        let wrong_n = vec![a_shards[0].clone(), other_n[1].clone()];
        match ShardRouter::assemble_rolling(wrong_n) {
            Err(OracleError::ShardSetMismatch { what }) => {
                assert!(what.contains("n = "), "must name the field: {what}");
            }
            other => panic!("wrong-n slice must be rejected, got {other:?}"),
        }
        assert!(ShardRouter::assemble_rolling(vec![a_shards[0].clone()]).is_err());
    }

    #[test]
    fn partition_rejects_impossible_plans() {
        let oracle = build(8, 1);
        assert!(ShardedArtifact::partition(&oracle, 0).is_err());
        assert!(ShardedArtifact::partition(&oracle, 9).is_err());
    }

    #[test]
    fn shard_accessors_describe_the_slice() {
        let oracle = build(21, 4);
        let sharded = ShardedArtifact::partition(&oracle, 3).unwrap();
        let plan = sharded.plan();
        assert_eq!((plan.n(), plan.count()), (21, 3));
        let mut total_owned = 0usize;
        for (i, shard) in sharded.shards().iter().enumerate() {
            assert_eq!(shard.index(), i);
            assert_eq!(shard.count(), 3);
            assert_eq!(shard.owned(), plan.range(i));
            assert_eq!(shard.n(), oracle.n());
            assert_eq!(shard.k(), oracle.k());
            assert_eq!(shard.landmarks(), oracle.landmarks());
            assert_eq!(shard.set_id(), crate::serde::payload_checksum(&oracle));
            assert!(shard.artifact_bytes() > 0);
            total_owned += shard.owned().len();
        }
        assert_eq!(total_owned, oracle.n(), "every node owned exactly once");
    }
}
