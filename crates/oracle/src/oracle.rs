//! The immutable query-phase artifact.

use cc_matrix::Dist;

/// A build-once / query-many distance oracle: per-node exact `k`-nearest
/// balls, a landmark set hitting every ball, and `(1+ε)`-approximate
/// distance columns from every node to every landmark.
///
/// The artifact is purely local and immutable: every query method takes
/// `&self`, performs no clique communication, and is safe to call from many
/// threads at once. See the crate docs for the stretch guarantee.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceOracle {
    pub(crate) n: usize,
    pub(crate) k: usize,
    pub(crate) epsilon: f64,
    pub(crate) seed: u64,
    pub(crate) build_rounds: u64,
    /// Landmark node ids, ascending.
    pub(crate) landmarks: Vec<u32>,
    /// Per node: the exact `k`-nearest ball as `(node, distance)` sorted by
    /// node id (for `O(log k)` membership tests).
    pub(crate) balls: Vec<Vec<(u32, u64)>>,
    /// Per node: `(index into landmarks, exact distance)` of its nearest
    /// landmark `p(v)`.
    pub(crate) nearest_landmark: Vec<(u32, u64)>,
    /// Row-major `n × landmarks.len()` matrix of `(1+ε)`-approximate
    /// distances to each landmark; `u64::MAX` encodes unreachable.
    pub(crate) columns: Vec<u64>,
}

impl DistanceOracle {
    /// Number of nodes the oracle covers.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The ball-size parameter `k` the oracle was built with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The MSSP accuracy parameter `ε` the oracle was built with.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The landmark-selection seed the oracle was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Clique rounds the one-off build phase charged. Queries charge zero.
    pub fn build_rounds(&self) -> u64 {
        self.build_rounds
    }

    /// The landmark node ids (ascending).
    pub fn landmarks(&self) -> &[u32] {
        &self.landmarks
    }

    /// The documented multiplicative stretch bound `3·(1+ε)` for answers
    /// outside the exact-ball regime. Every finite answer `est` satisfies
    /// `d(u,v) ≤ est ≤ stretch_bound() · d(u,v)`.
    pub fn stretch_bound(&self) -> f64 {
        3.0 * (1.0 + self.epsilon)
    }

    /// Heap footprint of the artifact in bytes (balls + columns +
    /// landmarks), for capacity planning.
    pub fn artifact_bytes(&self) -> usize {
        let ball_entries: usize = self.balls.iter().map(Vec::len).sum();
        ball_entries * std::mem::size_of::<(u32, u64)>()
            + self.columns.len() * 8
            + self.landmarks.len() * 4
            + self.nearest_landmark.len() * std::mem::size_of::<(u32, u64)>()
    }

    /// Exact distance to `v` if it lies in `u`'s ball.
    fn ball_distance(&self, u: usize, v: usize) -> Option<u64> {
        let ball = &self.balls[u];
        ball.binary_search_by_key(&(v as u32), |&(id, _)| id).ok().map(|i| ball[i].1)
    }

    /// Approximate distance from `v` to landmark column `idx`.
    fn column(&self, v: usize, idx: usize) -> u64 {
        self.columns[v * self.landmarks.len() + idx]
    }

    /// Distance estimate for the pair `(u, v)`: zero communication,
    /// `O(log k)` time, never an underestimate, exact inside the balls and
    /// within [`DistanceOracle::stretch_bound`] otherwise.
    /// [`Dist::INF`] for disconnected pairs.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is not in `0..n` (the serving layer validates
    /// requests at the edge; the hot path does not pay for `Result`).
    pub fn query(&self, u: usize, v: usize) -> Dist {
        assert!(u < self.n && v < self.n, "query ({u}, {v}) outside 0..{}", self.n);
        if u == v {
            return Dist::ZERO;
        }
        // Exact regime: one endpoint inside the other's ball.
        if let Some(d) = self.ball_distance(u, v) {
            return Dist::fin(d);
        }
        if let Some(d) = self.ball_distance(v, u) {
            return Dist::fin(d);
        }
        // Landmark regime: route through the nearest landmark of either
        // endpoint, whichever gives the smaller (still sound) estimate.
        let mut best = u64::MAX;
        for (near, far) in [(u, v), (v, u)] {
            let (idx, to_landmark) = self.nearest_landmark[near];
            let col = self.column(far, idx as usize);
            if col != u64::MAX {
                best = best.min(to_landmark.saturating_add(col));
            }
        }
        if best == u64::MAX {
            Dist::INF
        } else {
            Dist::fin(best)
        }
    }

    /// Answers a batch of queries, sharding the work across available CPU
    /// cores with scoped std threads.
    ///
    /// (The container this workspace builds in has no rayon; std threads
    /// over contiguous shards are the stand-in and the seam where a proper
    /// work-stealing pool plugs in.)
    ///
    /// # Panics
    ///
    /// Panics if any pair is out of range, like [`DistanceOracle::query`].
    pub fn query_batch(&self, pairs: &[(usize, usize)]) -> Vec<Dist> {
        let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
        // Small batches are not worth the spawn cost.
        if threads <= 1 || pairs.len() < 1024 {
            return pairs.iter().map(|&(u, v)| self.query(u, v)).collect();
        }
        let shard = pairs.len().div_ceil(threads);
        let mut out = vec![Dist::INF; pairs.len()];
        std::thread::scope(|scope| {
            for (chunk_in, chunk_out) in pairs.chunks(shard).zip(out.chunks_mut(shard)) {
                scope.spawn(move || {
                    for (slot, &(u, v)) in chunk_out.iter_mut().zip(chunk_in) {
                        *slot = self.query(u, v);
                    }
                });
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OracleBuilder;
    use cc_clique::Clique;
    use cc_graph::{generators, reference};

    fn build(n: usize, seed: u64) -> (cc_graph::Graph, DistanceOracle) {
        let g = generators::gnp_weighted(n, 0.12, 30, seed).unwrap();
        let mut clique = Clique::new(n);
        let oracle = OracleBuilder::new().seed(seed).build(&mut clique, &g).unwrap();
        (g, oracle)
    }

    #[test]
    fn query_is_sound_and_within_stretch() {
        let (g, oracle) = build(48, 3);
        let bound = oracle.stretch_bound();
        for u in 0..g.n() {
            let exact = reference::dijkstra(&g, u);
            for v in 0..g.n() {
                let est = oracle.query(u, v);
                let d = exact[v].expect("gnp is connected");
                let est = est.value().expect("connected pair must be finite");
                assert!(est >= d, "underestimate {est} < {d} for ({u},{v})");
                assert!(
                    est as f64 <= bound * d as f64 + 1e-9,
                    "stretch violated: {est} > {bound}*{d} for ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn query_is_symmetric_and_zero_on_diagonal() {
        let (g, oracle) = build(32, 5);
        for u in 0..g.n() {
            assert_eq!(oracle.query(u, u), Dist::ZERO);
            for v in 0..g.n() {
                assert_eq!(oracle.query(u, v), oracle.query(v, u), "({u},{v})");
            }
        }
    }

    #[test]
    fn batch_agrees_with_single_queries() {
        let (_, oracle) = build(32, 7);
        // Exercise both the sequential small-batch path and the sharded
        // threaded path.
        let small: Vec<(usize, usize)> = (0..32).map(|i| (i, (i * 7 + 1) % 32)).collect();
        let large: Vec<(usize, usize)> = (0..5000).map(|i| (i % 32, (i * 13 + 5) % 32)).collect();
        for pairs in [small, large] {
            let batch = oracle.query_batch(&pairs);
            for (i, &(u, v)) in pairs.iter().enumerate() {
                assert_eq!(batch[i], oracle.query(u, v), "pair ({u},{v})");
            }
        }
    }

    #[test]
    fn disconnected_pairs_report_infinity() {
        let g = cc_graph::Graph::from_edges(8, [(0, 1, 2), (2, 3, 4)]).unwrap();
        let mut clique = Clique::new(8);
        let oracle = OracleBuilder::new().build(&mut clique, &g).unwrap();
        assert_eq!(oracle.query(0, 1), Dist::fin(2));
        assert_eq!(oracle.query(0, 2), Dist::INF);
        assert_eq!(oracle.query(4, 5), Dist::INF);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_query_panics() {
        let (_, oracle) = build(16, 1);
        oracle.query(0, 16);
    }
}
