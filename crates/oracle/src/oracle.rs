//! The immutable query-phase artifact.

use cc_matrix::Dist;

use crate::OracleError;

/// The largest finite distance an oracle answer can carry: `u64::MAX` is the
/// disconnected sentinel, so a landmark-path sum that reaches or overflows it
/// is clamped here instead of masquerading as `Dist::INF`.
pub const MAX_FINITE_DISTANCE: u64 = u64::MAX - 1;

/// A build-once / query-many distance oracle: per-node exact `k`-nearest
/// balls, a landmark set hitting every ball, and `(1+ε)`-approximate
/// distance columns from every node to every landmark.
///
/// The artifact is purely local and immutable: every query method takes
/// `&self`, performs no clique communication, and is safe to call from many
/// threads at once. See the crate docs for the stretch guarantee.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceOracle {
    pub(crate) n: usize,
    pub(crate) k: usize,
    pub(crate) epsilon: f64,
    pub(crate) seed: u64,
    pub(crate) build_rounds: u64,
    /// Landmark node ids, ascending.
    pub(crate) landmarks: Vec<u32>,
    /// Per node: the exact `k`-nearest ball as `(node, distance)` sorted by
    /// node id (for `O(log k)` membership tests).
    pub(crate) balls: Vec<Vec<(u32, u64)>>,
    /// Per node: `(index into landmarks, exact distance)` of its nearest
    /// landmark `p(v)`.
    pub(crate) nearest_landmark: Vec<(u32, u64)>,
    /// Row-major `n × landmarks.len()` matrix of `(1+ε)`-approximate
    /// distances to each landmark; `u64::MAX` encodes unreachable.
    pub(crate) columns: Vec<u64>,
}

impl DistanceOracle {
    /// Number of nodes the oracle covers.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The ball-size parameter `k` the oracle was built with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The MSSP accuracy parameter `ε` the oracle was built with.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The landmark-selection seed the oracle was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Clique rounds the one-off build phase charged. Queries charge zero.
    pub fn build_rounds(&self) -> u64 {
        self.build_rounds
    }

    /// The landmark node ids (ascending).
    pub fn landmarks(&self) -> &[u32] {
        &self.landmarks
    }

    /// The documented multiplicative stretch bound `3·(1+ε)` for answers
    /// outside the exact-ball regime. Every finite answer `est` satisfies
    /// `d(u,v) ≤ est ≤ stretch_bound() · d(u,v)`.
    pub fn stretch_bound(&self) -> f64 {
        3.0 * (1.0 + self.epsilon)
    }

    /// Heap footprint of the artifact in bytes (balls + columns +
    /// landmarks), for capacity planning.
    pub fn artifact_bytes(&self) -> usize {
        let ball_entries: usize = self.balls.iter().map(Vec::len).sum();
        ball_entries * std::mem::size_of::<(u32, u64)>()
            + self.columns.len() * 8
            + self.landmarks.len() * 4
            + self.nearest_landmark.len() * std::mem::size_of::<(u32, u64)>()
    }

    /// Exact distance to `v` if it lies in `u`'s ball.
    fn ball_distance(&self, u: usize, v: usize) -> Option<u64> {
        let ball = &self.balls[u];
        ball.binary_search_by_key(&(v as u32), |&(id, _)| id).ok().map(|i| ball[i].1)
    }

    /// Approximate distance from `v` to landmark column `idx`.
    fn column(&self, v: usize, idx: usize) -> u64 {
        self.columns[v * self.landmarks.len() + idx]
    }

    /// Distance estimate for the pair `(u, v)`: zero communication,
    /// `O(log k)` time, never an underestimate, exact inside the balls and
    /// within [`DistanceOracle::stretch_bound`] otherwise.
    /// [`Dist::INF`] for disconnected pairs; finite answers are clamped to
    /// [`MAX_FINITE_DISTANCE`] so a saturating landmark sum is never
    /// reported as disconnected. (The clamp is the one exception to
    /// "never an underestimate": when the true landmark-path length itself
    /// exceeds [`MAX_FINITE_DISTANCE`], the clamped answer is below it —
    /// reachability is preserved, the magnitude saturates.)
    ///
    /// An out-of-range endpoint is [`OracleError::QueryOutOfRange`]
    /// rather than a panic, so network front-ends can turn malformed
    /// requests into client errors without crashing the serving process.
    ///
    /// # Example
    ///
    /// ```
    /// use cc_clique::Clique;
    /// use cc_graph::generators;
    /// use cc_oracle::{OracleBuilder, OracleError};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let g = generators::gnp_weighted(16, 0.3, 10, 7)?;
    /// let mut clique = Clique::new(16);
    /// let oracle = OracleBuilder::new().build(&mut clique, &g)?;
    ///
    /// // In range: a finite, sound estimate.
    /// assert!(oracle.try_query(0, 15)?.is_finite());
    ///
    /// // Out of range: an error a serving layer maps to HTTP 400.
    /// assert!(matches!(
    ///     oracle.try_query(0, 99),
    ///     Err(OracleError::QueryOutOfRange { u: 0, v: 99, n: 16 })
    /// ));
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// [`OracleError::QueryOutOfRange`] if `u` or `v` is not in `0..n`.
    pub fn try_query(&self, u: usize, v: usize) -> Result<Dist, OracleError> {
        self.check_pair(u, v)?;
        Ok(self.query_unchecked(u, v))
    }

    pub(crate) fn check_pair(&self, u: usize, v: usize) -> Result<(), OracleError> {
        if u >= self.n || v >= self.n {
            return Err(OracleError::QueryOutOfRange { u, v, n: self.n });
        }
        Ok(())
    }

    /// The query kernel; callers must have validated `u, v < n`.
    pub(crate) fn query_unchecked(&self, u: usize, v: usize) -> Dist {
        if u == v {
            return Dist::ZERO;
        }
        // Exact regime: one endpoint inside the other's ball.
        if let Some(d) = self.ball_distance(u, v) {
            return Dist::fin(d);
        }
        if let Some(d) = self.ball_distance(v, u) {
            return Dist::fin(d);
        }
        // Landmark regime: route through the nearest landmark of either
        // endpoint, whichever gives the smaller (still sound) estimate.
        let mut best = u64::MAX;
        for (near, far) in [(u, v), (v, u)] {
            let (idx, to_landmark) = self.nearest_landmark[near];
            let col = self.column(far, idx as usize);
            if col != u64::MAX {
                // The pair is connected through this landmark, so the answer
                // must stay finite: a sum that reaches the u64::MAX sentinel
                // (or overflows past it) is clamped to the largest finite
                // value rather than being misreported as "disconnected".
                let via = to_landmark
                    .checked_add(col)
                    .map_or(MAX_FINITE_DISTANCE, |s| s.min(MAX_FINITE_DISTANCE));
                best = best.min(via);
            }
        }
        if best == u64::MAX {
            Dist::INF
        } else {
            Dist::fin(best)
        }
    }

    /// Answers a batch of queries, sharding the work across available CPU
    /// cores with scoped std threads.
    ///
    /// (The container this workspace builds in has no rayon; std threads
    /// over contiguous shards are the stand-in and the seam where a proper
    /// work-stealing pool plugs in.)
    ///
    /// Every pair is validated up front, so either the whole batch is
    /// answered or nothing is computed.
    ///
    /// # Errors
    ///
    /// [`OracleError::QueryOutOfRange`] naming the first offending pair.
    pub fn try_query_batch(&self, pairs: &[(usize, usize)]) -> Result<Vec<Dist>, OracleError> {
        for &(u, v) in pairs {
            self.check_pair(u, v)?;
        }
        Ok(self.batch_unchecked(pairs))
    }

    /// The batch kernel; callers must have validated every pair.
    fn batch_unchecked(&self, pairs: &[(usize, usize)]) -> Vec<Dist> {
        let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
        // Small batches are not worth the spawn cost.
        if threads <= 1 || pairs.len() < 1024 {
            return pairs.iter().map(|&(u, v)| self.query_unchecked(u, v)).collect();
        }
        let shard = pairs.len().div_ceil(threads);
        let mut out = vec![Dist::INF; pairs.len()];
        std::thread::scope(|scope| {
            for (chunk_in, chunk_out) in pairs.chunks(shard).zip(out.chunks_mut(shard)) {
                scope.spawn(move || {
                    for (slot, &(u, v)) in chunk_out.iter_mut().zip(chunk_in) {
                        *slot = self.query_unchecked(u, v);
                    }
                });
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OracleBuilder;
    use cc_clique::Clique;
    use cc_graph::{generators, reference};

    fn build(n: usize, seed: u64) -> (cc_graph::Graph, DistanceOracle) {
        let g = generators::gnp_weighted(n, 0.12, 30, seed).unwrap();
        let mut clique = Clique::new(n);
        let oracle = OracleBuilder::new().seed(seed).build(&mut clique, &g).unwrap();
        (g, oracle)
    }

    #[test]
    fn query_is_sound_and_within_stretch() {
        let (g, oracle) = build(48, 3);
        let bound = oracle.stretch_bound();
        for u in 0..g.n() {
            let exact = reference::dijkstra(&g, u);
            for v in 0..g.n() {
                let est = oracle.try_query(u, v).unwrap();
                let d = exact[v].expect("gnp is connected");
                let est = est.value().expect("connected pair must be finite");
                assert!(est >= d, "underestimate {est} < {d} for ({u},{v})");
                assert!(
                    est as f64 <= bound * d as f64 + 1e-9,
                    "stretch violated: {est} > {bound}*{d} for ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn query_is_symmetric_and_zero_on_diagonal() {
        let (g, oracle) = build(32, 5);
        for u in 0..g.n() {
            assert_eq!(oracle.try_query(u, u).unwrap(), Dist::ZERO);
            for v in 0..g.n() {
                assert_eq!(
                    oracle.try_query(u, v).unwrap(),
                    oracle.try_query(v, u).unwrap(),
                    "({u},{v})"
                );
            }
        }
    }

    #[test]
    fn batch_agrees_with_single_queries() {
        let (_, oracle) = build(32, 7);
        // Exercise both the sequential small-batch path and the sharded
        // threaded path.
        let small: Vec<(usize, usize)> = (0..32).map(|i| (i, (i * 7 + 1) % 32)).collect();
        let large: Vec<(usize, usize)> = (0..5000).map(|i| (i % 32, (i * 13 + 5) % 32)).collect();
        for pairs in [small, large] {
            let batch = oracle.try_query_batch(&pairs).unwrap();
            for (i, &(u, v)) in pairs.iter().enumerate() {
                assert_eq!(batch[i], oracle.try_query(u, v).unwrap(), "pair ({u},{v})");
            }
        }
    }

    #[test]
    fn disconnected_pairs_report_infinity() {
        let g = cc_graph::Graph::from_edges(8, [(0, 1, 2), (2, 3, 4)]).unwrap();
        let mut clique = Clique::new(8);
        let oracle = OracleBuilder::new().build(&mut clique, &g).unwrap();
        assert_eq!(oracle.try_query(0, 1).unwrap(), Dist::fin(2));
        assert_eq!(oracle.try_query(0, 2).unwrap(), Dist::INF);
        assert_eq!(oracle.try_query(4, 5).unwrap(), Dist::INF);
    }

    #[test]
    fn try_query_rejects_out_of_range_without_panicking() {
        let (_, oracle) = build(16, 1);
        assert!(matches!(
            oracle.try_query(0, 16),
            Err(crate::OracleError::QueryOutOfRange { u: 0, v: 16, n: 16 })
        ));
        assert!(matches!(oracle.try_query(99, 0), Err(crate::OracleError::QueryOutOfRange { .. })));
        for u in 0..16 {
            for v in 0..16 {
                assert_eq!(oracle.try_query(u, v).unwrap(), oracle.query_unchecked(u, v));
            }
        }
    }

    #[test]
    fn try_query_batch_rejects_any_bad_pair_and_matches_batch() {
        let (_, oracle) = build(16, 2);
        let good: Vec<(usize, usize)> = (0..16).map(|i| (i, (i * 5 + 2) % 16)).collect();
        let singles: Vec<_> = good.iter().map(|&(u, v)| oracle.query_unchecked(u, v)).collect();
        assert_eq!(oracle.try_query_batch(&good).unwrap(), singles);
        let mut bad = good;
        bad.push((3, 16));
        assert!(matches!(
            oracle.try_query_batch(&bad),
            Err(crate::OracleError::QueryOutOfRange { u: 3, v: 16, n: 16 })
        ));
    }

    /// A hand-crafted artifact for the path `0 — 1 — 2` with edge weights
    /// `w01`, `w12` near `u64::MAX`, `k = 1` (balls are singletons) and
    /// node 1 the only landmark: the only route for `(0, 2)` is
    /// `w01 + w12`.
    fn near_max_path_oracle(w01: u64, w12: u64) -> DistanceOracle {
        DistanceOracle {
            n: 3,
            k: 1,
            epsilon: 0.25,
            seed: 0,
            build_rounds: 0,
            landmarks: vec![1],
            balls: vec![vec![(0, 0)], vec![(1, 0)], vec![(2, 0)]],
            nearest_landmark: vec![(0, w01), (0, 0), (0, w12)],
            columns: vec![w01, 0, w12],
        }
    }

    #[test]
    fn saturating_landmark_sum_is_clamped_finite_not_reported_as_inf() {
        // Regression: `saturating_add` used to drive the sum to u64::MAX,
        // which the sentinel comparison then reported as a disconnected
        // pair. The pair is connected, so the answer must be finite.
        let w = u64::MAX - 3;
        let oracle = near_max_path_oracle(w, w);
        let d = oracle.try_query(0, 2).unwrap();
        assert!(d.is_finite(), "connected pair reported as disconnected after overflow");
        assert_eq!(d, Dist::fin(super::MAX_FINITE_DISTANCE));
        // The single-hop answers stay untouched by the clamp.
        assert_eq!(oracle.try_query(0, 1).unwrap(), Dist::fin(w));
        assert_eq!(oracle.try_query(1, 2).unwrap(), Dist::fin(w));
    }

    #[test]
    fn exact_sentinel_collision_is_clamped_to_largest_finite() {
        // The sum equals u64::MAX exactly: no u64 overflow, but it collides
        // with the infinity sentinel and must still be clamped.
        let oracle = near_max_path_oracle(u64::MAX / 2, u64::MAX / 2 + 1);
        assert_eq!(oracle.try_query(0, 2).unwrap(), Dist::fin(super::MAX_FINITE_DISTANCE));
        // A genuinely disconnected artifact still reports infinity.
        let mut disconnected = near_max_path_oracle(5, 7);
        disconnected.columns = vec![u64::MAX, 0, u64::MAX];
        disconnected.nearest_landmark[0].1 = 0;
        disconnected.nearest_landmark[2].1 = 0;
        assert_eq!(disconnected.try_query(0, 2).unwrap(), Dist::INF);
    }
}
