//! The build phase: one distributed pass that extracts the local artifact.

use std::time::Instant;

use cc_clique::Clique;
use cc_core::mssp::mssp;
use cc_distance::{hitting_set, k_nearest, HittingSet};
use cc_graph::Graph;
use cc_matrix::AugDist;
use cc_telemetry::BuildTrace;

use crate::error::invalid;
use crate::{DistanceOracle, OracleError};

/// The default ball size `⌈√(n·ln n)⌉` — balancing ball size against the
/// `O(n log n / k)` landmark count, the paper's §4 trade-off. Shared by
/// [`OracleBuilder`] and [`crate::direct::DirectBuilder`] so the two build
/// paths resolve identical parameters.
pub(crate) fn default_k(n: usize) -> usize {
    ((n as f64) * (n.max(2) as f64).ln()).sqrt().ceil() as usize
}

/// The purely local extraction kernel shared by both builders: per-node
/// balls sorted by id, the nearest-landmark row (`p(v)` by the augmented
/// order, then id), and the already-flattened column matrix.
///
/// `near[v]` holds node `v`'s `k`-nearest ball as `(id, augmented
/// distance)` entries; `columns` is the row-major `n × |landmarks|` matrix
/// with `Dist::INF.raw()` marking an unreachable landmark. `build_rounds`
/// is left at 0 (the direct builder's value); the clique builder overwrites
/// it with the simulator's count after extraction.
///
/// # Panics
///
/// Panics if some ball contains no landmark — impossible for a hitting set
/// built over these balls (every ball contains its own node and the repair
/// pass hits every non-empty set).
pub(crate) fn extract_artifact(
    n: usize,
    k: usize,
    epsilon: f64,
    seed: u64,
    near: &[Vec<(u32, AugDist)>],
    landmarks: &HittingSet,
    columns: Vec<u64>,
) -> DistanceOracle {
    let landmark_ids: Vec<u32> = landmarks.members.iter().map(|&a| a as u32).collect();
    debug_assert_eq!(columns.len(), n * landmark_ids.len());
    let mut balls: Vec<Vec<(u32, u64)>> = Vec::with_capacity(n);
    let mut nearest_landmark: Vec<(u32, u64)> = Vec::with_capacity(n);
    for v in 0..n {
        let mut ball: Vec<(u32, u64)> = near[v].iter().map(|&(c, a)| (c, a.dist)).collect();
        ball.sort_unstable_by_key(|&(id, _)| id);
        let (p, aug) = landmarks
            .closest_of(near[v].iter().map(|(c, a)| (*c, a)))
            .expect("hitting set covers every ball");
        let idx = landmark_ids.binary_search(&(p as u32)).expect("closest hitter is a landmark");
        nearest_landmark.push((idx as u32, aug.dist));
        balls.push(ball);
    }
    DistanceOracle {
        n,
        k,
        epsilon,
        seed,
        build_rounds: 0,
        landmarks: landmark_ids,
        balls,
        nearest_landmark,
        columns,
    }
}

/// Appends one phase span to `trace`, charging the round/message/word
/// deltas since `before` and the wall time since `started`.
fn close_span(
    trace: &mut BuildTrace,
    name: &str,
    clique: &Clique,
    before: &cc_clique::RoundReport,
    started: Instant,
) {
    let after = clique.report();
    trace.record(
        name,
        started.elapsed().as_nanos() as u64,
        after.rounds - before.rounds,
        after.messages - before.messages,
        after.words - before.words,
    );
}

/// Configures and runs the one-off distributed build of a
/// [`DistanceOracle`].
///
/// Defaults: `k = ⌈√(n·ln n)⌉` (balancing ball size against the
/// `O(n log n / k)` landmark count, the paper's §4 trade-off), `ε = 0.25`,
/// `seed = 0`.
///
/// # Example
///
/// ```
/// use cc_clique::Clique;
/// use cc_graph::generators;
/// use cc_oracle::OracleBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::grid_weighted(6, 6, 20, 1)?;
/// let mut clique = Clique::new(36);
/// let oracle = OracleBuilder::new().k(8).epsilon(0.5).build(&mut clique, &g)?;
/// assert_eq!(oracle.k(), 8);
/// assert!(oracle.build_rounds() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct OracleBuilder {
    k: Option<usize>,
    epsilon: f64,
    seed: u64,
}

impl Default for OracleBuilder {
    fn default() -> Self {
        OracleBuilder { k: None, epsilon: 0.25, seed: 0 }
    }
}

impl OracleBuilder {
    /// A builder with default parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ball size `k` (default `⌈√(n·ln n)⌉`, clamped to `1..=n`).
    pub fn k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// MSSP accuracy `ε > 0`; the serving-phase stretch bound is `3(1+ε)`.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Seed for the deterministic landmark selection. Two builds with the
    /// same graph, parameters and seed produce identical artifacts.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs the distributed build: `k`-nearest balls, hitting-set landmark
    /// selection, and MSSP columns from the landmark set; then extracts the
    /// purely local artifact.
    ///
    /// # Errors
    ///
    /// * [`OracleError::InvalidParameter`] for `k = 0`, `ε ≤ 0`, or a
    ///   graph/clique size mismatch;
    /// * [`OracleError::Build`] if a distributed substrate fails.
    pub fn build(&self, clique: &mut Clique, graph: &Graph) -> Result<DistanceOracle, OracleError> {
        self.build_traced(clique, graph).map(|(oracle, _)| oracle)
    }

    /// Like [`build`](Self::build), but also returns a
    /// [`BuildTrace`] with one span per phase — k-nearest balls,
    /// hitting-set landmarks, MSSP columns, local extraction — each
    /// carrying the phase's simulated rounds, wall time, and message
    /// volume (messages/words moved through the clique).
    ///
    /// # Errors
    ///
    /// Same conditions as [`build`](Self::build).
    pub fn build_traced(
        &self,
        clique: &mut Clique,
        graph: &Graph,
    ) -> Result<(DistanceOracle, BuildTrace), OracleError> {
        let n = graph.n();
        if n != clique.n() {
            return Err(invalid(format!("graph has {n} nodes but clique has {}", clique.n())));
        }
        if n == 0 {
            return Err(invalid("oracle needs a non-empty graph"));
        }
        if self.epsilon <= 0.0 {
            return Err(invalid("oracle needs epsilon > 0"));
        }
        let k = self.k.unwrap_or_else(|| default_k(n)).min(n);
        if k == 0 {
            return Err(invalid("oracle needs k >= 1"));
        }

        let rounds_before = clique.rounds();
        let mut trace = BuildTrace::new();

        // Phase 1 — Theorem 18: exact k-nearest balls.
        let (report, started) = (clique.report(), Instant::now());
        let near = k_nearest(clique, graph, k)?;
        close_span(&mut trace, "k_nearest_balls", clique, &report, started);

        // Phase 2 — Lemma 4: a landmark set hitting every ball. Balls always
        // contain their own node, so every node gets a landmark in its ball.
        let (report, started) = (clique.report(), Instant::now());
        let sets: Vec<Vec<usize>> =
            near.iter().map(|row| row.iter().map(|(c, _)| c as usize).collect()).collect();
        let landmarks = hitting_set(clique, &sets, k, self.seed)?;
        close_span(&mut trace, "hitting_set_landmarks", clique, &report, started);

        // Phase 3 — Theorem 3: (1+ε) distance columns from the landmarks.
        let (report, started) = (clique.report(), Instant::now());
        let run = mssp(clique, graph, &landmarks.members, self.epsilon)?;
        close_span(&mut trace, "mssp_columns", clique, &report, started);
        let build_rounds = clique.rounds() - rounds_before;

        // Extraction — purely local, no further communication.
        let (report, started) = (clique.report(), Instant::now());
        let near_rows: Vec<Vec<(u32, AugDist)>> =
            near.iter().map(|row| row.iter().map(|(c, a)| (c, *a)).collect()).collect();
        let s = landmarks.len();
        let mut columns = vec![cc_matrix::Dist::INF.raw(); n * s];
        for v in 0..n {
            for i in 0..s {
                if let Some(d) = run.dist[v][i].value() {
                    columns[v * s + i] = d;
                }
            }
        }
        let mut oracle =
            extract_artifact(n, k, self.epsilon, self.seed, &near_rows, &landmarks, columns);
        oracle.build_rounds = build_rounds;
        close_span(&mut trace, "local_extraction", clique, &report, started);
        Ok((oracle, trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::generators;

    #[test]
    fn default_k_tracks_sqrt_n_log_n() {
        let g = generators::gnp(64, 0.15, 2).unwrap();
        let mut clique = Clique::new(64);
        let oracle = OracleBuilder::new().build(&mut clique, &g).unwrap();
        let expected = ((64f64) * (64f64).ln()).sqrt().ceil() as usize;
        assert_eq!(oracle.k(), expected);
        assert!(!oracle.landmarks().is_empty());
        assert!(oracle.landmarks().len() < 64, "landmarks must be a sketch, not everyone");
    }

    #[test]
    fn build_charges_rounds_only_once() {
        let g = generators::gnp(32, 0.2, 3).unwrap();
        let mut clique = Clique::new(32);
        let oracle = OracleBuilder::new().build(&mut clique, &g).unwrap();
        assert_eq!(oracle.build_rounds(), clique.rounds());
        let before = clique.rounds();
        // Queries are local: the clique's round counter must not move.
        for u in 0..32 {
            for v in 0..32 {
                let _ = oracle.try_query(u, v).unwrap();
            }
        }
        assert_eq!(clique.rounds(), before);
    }

    #[test]
    fn same_seed_rebuilds_identical_artifact() {
        let g = generators::gnp_weighted(32, 0.15, 25, 4).unwrap();
        let build = |seed: u64| {
            let mut clique = Clique::new(32);
            OracleBuilder::new().seed(seed).build(&mut clique, &g).unwrap()
        };
        assert_eq!(build(9), build(9));
    }

    #[test]
    fn build_trace_accounts_for_every_round() {
        let g = generators::gnp(32, 0.2, 3).unwrap();
        let mut clique = Clique::new(32);
        let (oracle, trace) = OracleBuilder::new().build_traced(&mut clique, &g).unwrap();
        let phases: Vec<&str> = trace.spans().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            phases,
            vec!["k_nearest_balls", "hitting_set_landmarks", "mssp_columns", "local_extraction"]
        );
        // The three distributed phases account for exactly the build rounds;
        // extraction is local and charges none.
        assert_eq!(trace.total_rounds(), oracle.build_rounds());
        assert_eq!(trace.span("local_extraction").unwrap().rounds, 0);
        assert!(trace.span("mssp_columns").unwrap().rounds > 0);
        assert!(trace.span("k_nearest_balls").unwrap().words > 0, "phase 1 moves data");
    }

    #[test]
    fn rejects_bad_parameters() {
        let g = generators::path(8).unwrap();
        let mut clique = Clique::new(8);
        assert!(OracleBuilder::new().epsilon(0.0).build(&mut clique, &g).is_err());
        assert!(OracleBuilder::new().k(0).build(&mut clique, &g).is_err());
        let mut mismatched = Clique::new(9);
        assert!(OracleBuilder::new().build(&mut mismatched, &g).is_err());
    }

    #[test]
    fn oversized_k_is_clamped_to_n() {
        let g = generators::path(6).unwrap();
        let mut clique = Clique::new(6);
        let oracle = OracleBuilder::new().k(100).build(&mut clique, &g).unwrap();
        assert_eq!(oracle.k(), 6);
        // With k = n every ball is the whole component: all queries exact.
        for u in 0..6 {
            for v in 0..6 {
                assert_eq!(
                    oracle.try_query(u, v).unwrap().value(),
                    cc_graph::reference::dijkstra(&g, u)[v]
                );
            }
        }
    }
}
