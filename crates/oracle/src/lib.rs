//! # `cc-oracle`: a build-once / query-many distance oracle
//!
//! The rest of the workspace *computes* the approximations of *Fast
//! Approximate Shortest Paths in the Congested Clique* (PODC 2019); this
//! crate *serves* them. It separates the expensive distributed **build
//! phase** from a cheap, purely local **query phase**:
//!
//! * [`OracleBuilder`] runs once in the clique. It combines the paper's own
//!   substrates — `k`-nearest balls (Theorem 18), a hitting-set landmark
//!   selection (Lemma 4), and MSSP distance columns from the landmark set
//!   (Theorem 3) — into an immutable [`DistanceOracle`] artifact. This is a
//!   Thorup–Zwick-style sketch: per-node exact balls plus approximate
//!   landmark columns.
//! * [`DirectBuilder`] computes the **same artifact without the clique**:
//!   plain (optionally multithreaded) graph algorithms over the same
//!   schedules, byte-identical to the clique build by construction and
//!   proven so by the differential suite (`tests/build_equivalence.rs`).
//!   Its capped mode (`max_landmarks`) trades the identity contract for
//!   `10⁵`–`10⁶`-node artifacts. See `docs/BUILDERS.md`.
//! * [`DistanceOracle::try_query`] answers `d(u, v)` with **zero clique
//!   rounds**: exact when one endpoint lies in the other's ball, and at most
//!   `3·(1+ε)·d(u, v)` otherwise (routing through the nearest landmark).
//!   Queries take `O(log k)` time, need only `&self`, and are lock-free
//!   (see *Query contract* below).
//! * [`DistanceOracle::try_query_batch`] shards a batch across std threads
//!   (the seam where a rayon pool or async front-end plugs in later).
//! * [`QueryBackend`] is the object-safe serving contract every tier
//!   implements — monolithic oracle, shard router, and any cache over
//!   either — so a serving layer holds one `Box<dyn QueryBackend>` and
//!   never branches on which it is fronting. See `docs/BACKENDS.md`.
//! * [`CachingOracle`] adds a bounded, sharded LRU result cache — over
//!   **any** [`QueryBackend`], not just the monolith — with hit/miss
//!   counters for repeated-query traffic and a warm-up API
//!   ([`CachingOracle::hottest_keys`] / [`CachingOracle::warm`]) so a hot
//!   reload does not restart from a cold cache.
//! * [`serde::to_bytes`] / [`serde::from_bytes`] snapshot a built oracle so
//!   a serving process (like `cc-serve`, which hot-swaps them under
//!   traffic) can load it without re-running the clique. Snapshots are
//!   **versioned and self-describing**: an 80-byte header carries the
//!   format version, graph size, `ε`, landmark count, build metadata and a
//!   payload checksum ([`serde::SnapshotHeader`]), so a stale or corrupt
//!   artifact is rejected ([`OracleError::SnapshotVersionMismatch`],
//!   [`OracleError::SnapshotChecksumMismatch`]) instead of silently
//!   served. The byte layout is specified in `docs/SNAPSHOT_FORMAT.md`.
//! * [`shard::ShardedArtifact`] partitions a built oracle by contiguous
//!   node range — per-shard balls and nearest-landmark rows, replicated
//!   landmark columns — and [`shard::ShardRouter`] answers queries over the
//!   set **bit-identically to the monolith** by combining one
//!   [`shard::HalfQuery`] per endpoint. Per-shard snapshots
//!   ([`serde::to_shard_bytes`]) carry shard index/count and a shared set
//!   id, so a router tier (a sharded-manifest `cc-serve`) can load, verify, and
//!   hot-swap each slice independently. See `docs/SHARDING.md`.
//!
//! # Stretch guarantee
//!
//! For connected `u, v` the returned estimate `est` always satisfies
//! `d(u, v) ≤ est`, and:
//!
//! * `est = d(u, v)` exactly, if `v ∈ B_k(u)` or `u ∈ B_k(v)` (the balls
//!   store exact distances);
//! * `est ≤ 3·(1+ε)·d(u, v)` otherwise: with `p(u)` the nearest landmark of
//!   `u` (which lies inside `B_k(u)` by the hitting-set property, so
//!   `d(u, p(u)) ≤ d(u, v)`), the estimate `d(u, p(u)) + d̃(p(u), v)` is at
//!   most `d(u, p(u)) + (1+ε)(d(p(u), u) + d(u, v)) ≤ 3(1+ε)·d(u, v)`,
//!   where `d̃` is the `(1+ε)` MSSP column.
//!
//! Disconnected pairs report [`cc_matrix::Dist::INF`]. A connected pair is
//! **never** reported as infinite: a landmark-path sum that would reach or
//! overflow the `u64::MAX` sentinel is clamped to [`MAX_FINITE_DISTANCE`]
//! (`u64::MAX - 1`), trading an (astronomically large) exact value for a
//! correct reachability verdict.
//!
//! # Query contract: fallible-first
//!
//! The query contract is **fallible-first**, shared by every backend
//! through the [`QueryBackend`] trait:
//!
//! * [`DistanceOracle::try_query`] / [`DistanceOracle::try_query_batch`]
//!   (and the same pair on [`CachingOracle`] and [`ShardRouter`]) return
//!   `Result<_, OracleError>`: an endpoint outside `0..n` is
//!   [`OracleError::QueryOutOfRange`]. **Network front-ends must use
//!   these** — validation happens at the edge, and a malformed request
//!   becomes a client error instead of a crashed (or lock-poisoned)
//!   serving process. This is what `cc-serve` does. (The panicking
//!   `query` / `query_batch` wrappers served their one-release
//!   deprecation window and are gone.)
//!
//! # Build observability
//!
//! [`OracleBuilder::build_traced`] and
//! [`shard::ShardedArtifact::partition_traced`] additionally return a
//! [`cc_telemetry::BuildTrace`] with one span per construction phase
//! (k-nearest balls, hitting-set landmarks, MSSP columns, extraction /
//! per-shard slicing) carrying the phase's simulated clique rounds, wall
//! time, and message volume — the numbers `cc-serve --demo` logs at
//! startup and `BENCH_oracle.json` records as `build_phase_*_ms`.
//!
//! # Example
//!
//! ```
//! use cc_clique::Clique;
//! use cc_graph::generators;
//! use cc_oracle::OracleBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let n = 64;
//! let g = generators::gnp_weighted(n, 0.1, 20, 7)?;
//! let mut clique = Clique::new(n);
//!
//! // Build once in the clique...
//! let oracle = OracleBuilder::new().epsilon(0.25).seed(42).build(&mut clique, &g)?;
//! println!("build cost: {} rounds", oracle.build_rounds());
//!
//! // ...then query for free, forever.
//! let exact = cc_graph::reference::dijkstra(&g, 0)[n - 1].unwrap();
//! let est = oracle.try_query(0, n - 1)?.value().unwrap();
//! assert!(est >= exact);
//! assert!(est as f64 <= oracle.stretch_bound() * exact as f64);
//!
//! // Snapshot and reload without touching the clique again.
//! let bytes = cc_oracle::serde::to_bytes(&oracle);
//! let reloaded = cc_oracle::serde::from_bytes(&bytes)?;
//! assert_eq!(oracle, reloaded);
//! # Ok(())
//! # }
//! ```
//!
//! Unsafe code is forbidden (`#![forbid(unsafe_code)]`), as across the
//! whole workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Distributed extraction indexes many parallel per-node vectors by node id;
// iterator zips would obscure which node each access belongs to.
#![allow(clippy::needless_range_loop)]

pub mod backend;
mod builder;
mod cache;
pub mod direct;
mod error;
mod oracle;
pub mod serde;
pub mod shard;
#[doc(hidden)]
pub mod testkit;

pub use backend::{BackendDescriptor, QueryBackend, ShardDescriptor};
pub use builder::OracleBuilder;
pub use cache::{CacheStats, CachingOracle};
pub use direct::DirectBuilder;
pub use error::OracleError;
pub use oracle::{DistanceOracle, MAX_FINITE_DISTANCE};
pub use shard::{OracleShard, ShardPlan, ShardRouter, ShardedArtifact};
