//! Snapshot an oracle to bytes and load it back — no external serde crate
//! (the build container is offline), just a **versioned, self-describing
//! little-endian layout** with an integrity checksum, so a serving process
//! can refuse a stale or corrupt artifact instead of silently loading it.
//!
//! The byte-level layout is specified in `docs/SNAPSHOT_FORMAT.md` at the
//! workspace root. In short (all integers little-endian):
//!
//! ```text
//! ── header, 80 bytes ─────────────────────────────────────────────
//! magic   b"CCOS"
//! u32     format version (currently 2)
//! u64     n, k; f64 epsilon (IEEE bits); u64 landmark count s
//! u64     seed, build_rounds, created_unix_secs
//! u64     payload_len, payload checksum (FNV-1a 64)
//! ── payload, payload_len bytes ───────────────────────────────────
//! s ×     u32 landmark ids
//! n ×     (u32 idx, u64 dist)          nearest landmark per node
//! n ×     u64 len, len × (u32, u64)    balls
//! n·s ×   u64                          landmark columns (MAX = ∞)
//! ```
//!
//! [`from_bytes`] rejects bad magic, an unsupported version
//! ([`OracleError::SnapshotVersionMismatch`]) and a payload whose checksum
//! disagrees with the header ([`OracleError::SnapshotChecksumMismatch`]),
//! on top of the structural validation (truncation, trailing bytes,
//! out-of-range indices, ∞-sentinel distances) the format always had.
//!
//! **Per-shard snapshots** (one slice of a [`crate::shard::ShardedArtifact`])
//! share the layout but open with magic `b"CCSH"` and a 96-byte header:
//! the v2 fields plus shard index, shard count, and the parent artifact's
//! set id, with the checksum covering those shard fields *and* the payload
//! (so a flipped shard index can never slip through). [`to_shard_bytes`] /
//! [`from_shard_bytes`] read and write them; [`from_bytes`] refuses a
//! shard file with [`OracleError::ShardSnapshot`] rather than serving a
//! slice as a whole artifact.
//!
//! The pre-versioning v1 layout (magic `b"CCO1"`, no build metadata, no
//! checksum) is recognized and reported as [`OracleError::LegacySnapshot`].
//! Its reader (`from_bytes_legacy`) was **removed** after the one-release
//! migration window promised in `docs/SNAPSHOT_FORMAT.md`; v1 bytes are
//! now rejected everywhere, never parsed.

use cc_matrix::Dist;

use crate::error::corrupt;
use crate::shard::{OracleShard, ShardPlan};
use crate::{DistanceOracle, OracleError};

/// Magic bytes opening a versioned (v2+) snapshot.
pub const SNAPSHOT_MAGIC: &[u8; 4] = b"CCOS";
/// The snapshot format version this build writes and accepts.
pub const SNAPSHOT_VERSION: u32 = 2;
/// Size of the fixed v2 header in bytes.
pub const HEADER_LEN: usize = 80;

/// Magic bytes opening a per-shard snapshot.
pub const SHARD_MAGIC: &[u8; 4] = b"CCSH";
/// Size of the fixed per-shard header in bytes: the 80-byte v2 header plus
/// shard index (`u32`), shard count (`u32`), and set id (`u64`).
pub const SHARD_HEADER_LEN: usize = 96;
/// Offset where the shard-specific header fields (and the region the shard
/// checksum covers) begin.
const SHARD_FIELDS_AT: usize = 80;

/// Magic bytes of the removed legacy (v1) format, recognized only to
/// reject it with a precise error.
const LEGACY_MAGIC: &[u8; 4] = b"CCO1";

/// The parsed, validated header of a versioned snapshot: everything an
/// operator (or a serving tier deciding whether to hot-swap) needs to know
/// about an artifact **without** deserializing the payload.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotHeader {
    /// Snapshot format version (currently [`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Number of nodes the artifact covers.
    pub n: usize,
    /// Ball-size parameter `k` of the build.
    pub k: usize,
    /// MSSP accuracy parameter `ε` of the build.
    pub epsilon: f64,
    /// Number of landmarks.
    pub landmarks: usize,
    /// Landmark-selection seed of the build.
    pub seed: u64,
    /// Clique rounds the build charged.
    pub build_rounds: u64,
    /// Unix timestamp (seconds) when the snapshot was written; `0` when
    /// unknown (e.g. a header synthesized for an in-process build).
    pub created_unix_secs: u64,
    /// Length of the payload in bytes.
    pub payload_len: u64,
    /// FNV-1a 64 checksum of the payload bytes.
    pub checksum: u64,
}

impl SnapshotHeader {
    /// The artifact's build id: the payload checksum rendered as 16 hex
    /// digits. Two snapshots of the same built oracle share a build id no
    /// matter when they were written; any payload difference changes it.
    pub fn build_id(&self) -> String {
        format!("{:016x}", self.checksum)
    }
}

/// The parsed, validated header of a **per-shard** snapshot: everything in
/// [`SnapshotHeader`] plus which slice of which set this file is.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardHeader {
    /// Snapshot format version (currently [`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Number of nodes the **parent artifact** covers (not just this shard).
    pub n: usize,
    /// Ball-size parameter `k` of the parent build.
    pub k: usize,
    /// MSSP accuracy parameter `ε` of the parent build.
    pub epsilon: f64,
    /// Number of landmarks (replicated into every shard).
    pub landmarks: usize,
    /// Landmark-selection seed of the parent build.
    pub seed: u64,
    /// Clique rounds the parent build charged.
    pub build_rounds: u64,
    /// Unix timestamp (seconds) when the shard snapshot was written; `0`
    /// when unknown.
    pub created_unix_secs: u64,
    /// Length of the payload in bytes.
    pub payload_len: u64,
    /// FNV-1a 64 checksum of the shard fields **and** the payload (every
    /// byte after the checksum field itself), so a flipped shard index or
    /// set id is caught like any payload corruption.
    pub checksum: u64,
    /// This shard's index within its set.
    pub shard_index: u32,
    /// Total shards in the set.
    pub shard_count: u32,
    /// Identity of the parent artifact: its monolithic payload checksum
    /// ([`payload_checksum`]), shared by every shard of one set.
    pub set_id: u64,
}

impl ShardHeader {
    /// This shard file's build id: its checksum as 16 hex digits. Distinct
    /// per shard (each carries a different slice); use
    /// [`ShardHeader::set_build_id`] for the identity the whole set shares.
    pub fn build_id(&self) -> String {
        format!("{:016x}", self.checksum)
    }

    /// The parent artifact's build id as 16 hex digits — equal across all
    /// shards of one set, and equal to the monolithic snapshot's build id.
    pub fn set_build_id(&self) -> String {
        format!("{:016x}", self.set_id)
    }

    /// The node range this shard owns under the recomputed [`ShardPlan`].
    pub fn owned(&self) -> std::ops::Range<usize> {
        // n/shard_count were validated at parse time, so the plan cannot
        // fail to rebuild; the empty range is the unreachable fallback
        // (downstream owned-range checks reject it with an error, which
        // beats panicking mid-reload).
        ShardPlan::new(self.n, self.shard_count as usize)
            .map_or(0..0, |plan| plan.range(self.shard_index as usize))
    }
}

/// FNV-1a 64-bit over `bytes` — tiny, dependency-free, and plenty to catch
/// bit rot and truncation (this is an integrity check, not an authenticity
/// one; snapshots come from trusted storage).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }
    fn u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, len: usize) -> Result<&'a [u8], OracleError> {
        let end = self
            .at
            .checked_add(len)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| corrupt(format!("truncated at byte {}", self.at)))?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }
    fn u32(&mut self) -> Result<u32, OracleError> {
        let bytes = self.take(4)?.try_into().map_err(|_| corrupt("short u32 read"))?;
        Ok(u32::from_le_bytes(bytes))
    }
    fn u64(&mut self) -> Result<u64, OracleError> {
        let bytes = self.take(8)?.try_into().map_err(|_| corrupt("short u64 read"))?;
        Ok(u64::from_le_bytes(bytes))
    }
    fn len(&mut self, what: &str, cap: usize) -> Result<usize, OracleError> {
        let raw = self.u64()?;
        // A length can never exceed the bytes remaining, which bounds
        // allocations from hostile input.
        if raw > cap as u64 {
            return Err(corrupt(format!("{what} length {raw} exceeds plausible {cap}")));
        }
        Ok(raw as usize)
    }
}

/// Serializes the payload section (everything after the header / after the
/// legacy scalars): landmarks, nearest-landmark table, balls, columns.
fn payload_bytes(oracle: &DistanceOracle) -> Vec<u8> {
    let mut w = Writer { buf: Vec::with_capacity(oracle.artifact_bytes() + 16) };
    for &a in &oracle.landmarks {
        w.u32(a);
    }
    for &(idx, d) in &oracle.nearest_landmark {
        w.u32(idx);
        w.u64(d);
    }
    for ball in &oracle.balls {
        w.u64(ball.len() as u64);
        for &(id, d) in ball {
            w.u32(id);
            w.u64(d);
        }
    }
    for &c in &oracle.columns {
        w.u64(c);
    }
    w.buf
}

/// The FNV-1a 64 checksum [`to_bytes`] would store for `oracle`'s payload —
/// i.e. the artifact's build id ([`SnapshotHeader::build_id`]) as a number.
/// Lets a serving layer report a stable build id for an oracle that was
/// built in-process and never touched disk.
pub fn payload_checksum(oracle: &DistanceOracle) -> u64 {
    fnv1a(&payload_bytes(oracle))
}

/// The header [`to_bytes`] would write for `oracle` right now, with
/// `created_unix_secs = 0` (no snapshot has actually been written).
pub fn header_of(oracle: &DistanceOracle) -> SnapshotHeader {
    let payload = payload_bytes(oracle);
    SnapshotHeader {
        version: SNAPSHOT_VERSION,
        n: oracle.n,
        k: oracle.k,
        epsilon: oracle.epsilon,
        landmarks: oracle.landmarks.len(),
        seed: oracle.seed,
        build_rounds: oracle.build_rounds,
        created_unix_secs: 0,
        payload_len: payload.len() as u64,
        checksum: fnv1a(&payload),
    }
}

/// Serializes a built oracle into a self-contained, versioned byte snapshot
/// (format v2: header with build metadata + checksummed payload).
pub fn to_bytes(oracle: &DistanceOracle) -> Vec<u8> {
    let created = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    to_bytes_created_at(oracle, created)
}

/// [`to_bytes`] with an explicit `created_unix_secs` header field, for
/// callers that need byte-for-byte reproducible snapshots (tests, content-
/// addressed artifact stores).
pub fn to_bytes_created_at(oracle: &DistanceOracle, created_unix_secs: u64) -> Vec<u8> {
    let payload = payload_bytes(oracle);
    let mut w = Writer { buf: Vec::with_capacity(HEADER_LEN + payload.len()) };
    w.buf.extend_from_slice(SNAPSHOT_MAGIC);
    w.u32(SNAPSHOT_VERSION);
    w.u64(oracle.n as u64);
    w.u64(oracle.k as u64);
    w.u64(oracle.epsilon.to_bits());
    w.u64(oracle.landmarks.len() as u64);
    w.u64(oracle.seed);
    w.u64(oracle.build_rounds);
    w.u64(created_unix_secs);
    w.u64(payload.len() as u64);
    w.u64(fnv1a(&payload));
    debug_assert_eq!(w.buf.len(), HEADER_LEN);
    w.buf.extend_from_slice(&payload);
    w.buf
}

/// Serializes the payload section of a per-shard snapshot: replicated
/// landmarks, the owned nearest-landmark rows and balls, and the
/// replicated column matrix.
fn shard_payload_bytes(shard: &OracleShard) -> Vec<u8> {
    let mut w = Writer { buf: Vec::with_capacity(shard.artifact_bytes() + 16) };
    for &a in &shard.landmarks {
        w.u32(a);
    }
    for &(idx, d) in &shard.nearest_landmark {
        w.u32(idx);
        w.u64(d);
    }
    for ball in &shard.balls {
        w.u64(ball.len() as u64);
        for &(id, d) in ball {
            w.u32(id);
            w.u64(d);
        }
    }
    for &c in &shard.columns {
        w.u64(c);
    }
    w.buf
}

/// Serializes one shard into a self-contained per-shard snapshot (magic
/// [`SHARD_MAGIC`], 96-byte header, checksummed shard fields + payload).
pub fn to_shard_bytes(shard: &OracleShard) -> Vec<u8> {
    let created = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    to_shard_bytes_created_at(shard, created)
}

/// [`to_shard_bytes`] with an explicit `created_unix_secs` header field,
/// for byte-for-byte reproducible shard snapshots.
pub fn to_shard_bytes_created_at(shard: &OracleShard, created_unix_secs: u64) -> Vec<u8> {
    let payload = shard_payload_bytes(shard);
    // The checksum covers every byte after itself: shard index, count, set
    // id, then the payload.
    let mut summed = Writer { buf: Vec::with_capacity(16 + payload.len()) };
    summed.u32(shard.index);
    summed.u32(shard.count);
    summed.u64(shard.set_id);
    summed.buf.extend_from_slice(&payload);

    let mut w = Writer { buf: Vec::with_capacity(SHARD_HEADER_LEN + payload.len()) };
    w.buf.extend_from_slice(SHARD_MAGIC);
    w.u32(SNAPSHOT_VERSION);
    w.u64(shard.n as u64);
    w.u64(shard.k as u64);
    w.u64(shard.epsilon.to_bits());
    w.u64(shard.landmarks.len() as u64);
    w.u64(shard.seed);
    w.u64(shard.build_rounds);
    w.u64(created_unix_secs);
    w.u64(payload.len() as u64);
    w.u64(fnv1a(&summed.buf));
    debug_assert_eq!(w.buf.len(), SHARD_FIELDS_AT);
    w.buf.extend_from_slice(&summed.buf);
    debug_assert_eq!(w.buf.len(), SHARD_HEADER_LEN + payload.len());
    w.buf
}

/// Parses and fully validates the header of a versioned snapshot —
/// including the payload checksum — **without** building the oracle. This
/// is how a serving tier inspects "what am I about to swap in?" cheaply
/// (one linear scan, no allocation proportional to the artifact).
///
/// # Errors
///
/// * [`OracleError::LegacySnapshot`] for removed v1 bytes.
/// * [`OracleError::ShardSnapshot`] for a per-shard snapshot (use
///   [`from_shard_bytes`]).
/// * [`OracleError::SnapshotVersionMismatch`] for a versioned snapshot
///   from a different format generation.
/// * [`OracleError::SnapshotChecksumMismatch`] when the payload does not
///   hash to the header's checksum.
/// * [`OracleError::CorruptSnapshot`] for bad magic, truncation, or
///   implausible header fields.
pub fn peek_header(bytes: &[u8]) -> Result<SnapshotHeader, OracleError> {
    let mut r = Reader { bytes, at: 0 };
    let magic = r.take(4)?;
    if magic == LEGACY_MAGIC {
        return Err(OracleError::LegacySnapshot);
    }
    if magic == SHARD_MAGIC {
        return Err(OracleError::ShardSnapshot);
    }
    if magic != SNAPSHOT_MAGIC {
        return Err(corrupt("bad magic (not an oracle snapshot)"));
    }
    let version = r.u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(OracleError::SnapshotVersionMismatch {
            found: version,
            supported: SNAPSHOT_VERSION,
        });
    }
    let payload_cap = bytes.len().saturating_sub(HEADER_LEN);
    let n = r.len("n", payload_cap)?;
    let k = r.len("k", payload_cap)?;
    let epsilon = f64::from_bits(r.u64()?);
    if epsilon <= 0.0 || !epsilon.is_finite() {
        return Err(corrupt(format!("epsilon {epsilon} out of range")));
    }
    let landmarks = r.len("landmark count", payload_cap)?;
    let seed = r.u64()?;
    let build_rounds = r.u64()?;
    let created_unix_secs = r.u64()?;
    let payload_len = r.u64()?;
    let checksum = r.u64()?;
    debug_assert_eq!(r.at, HEADER_LEN);
    if payload_len != payload_cap as u64 {
        return Err(corrupt(format!(
            "header claims a {payload_len}-byte payload but {payload_cap} bytes follow"
        )));
    }
    let computed = fnv1a(&bytes[HEADER_LEN..]);
    if computed != checksum {
        return Err(OracleError::SnapshotChecksumMismatch { stored: checksum, computed });
    }
    Ok(SnapshotHeader {
        version,
        n,
        k,
        epsilon,
        landmarks,
        seed,
        build_rounds,
        created_unix_secs,
        payload_len,
        checksum,
    })
}

/// Reconstructs an oracle from a [`to_bytes`] snapshot, validating the
/// header (magic, version, checksum) and the payload structure (index
/// bounds, sorted balls, sentinel rules, exact length).
///
/// # Errors
///
/// Everything [`peek_header`] rejects, plus
/// [`OracleError::CorruptSnapshot`] for structural payload damage.
pub fn from_bytes(bytes: &[u8]) -> Result<DistanceOracle, OracleError> {
    Ok(from_bytes_with_header(bytes)?.1)
}

/// [`from_bytes`] that also returns the validated [`SnapshotHeader`], so a
/// serving layer can report the loaded artifact's version / build id /
/// creation time without re-parsing.
///
/// # Errors
///
/// Same as [`from_bytes`].
pub fn from_bytes_with_header(
    bytes: &[u8],
) -> Result<(SnapshotHeader, DistanceOracle), OracleError> {
    let header = peek_header(bytes)?;
    let mut r = Reader { bytes, at: HEADER_LEN };
    let sections = read_sections(&mut r, header.n, header.landmarks, header.n)?;
    let oracle = DistanceOracle {
        n: header.n,
        k: header.k,
        epsilon: header.epsilon,
        seed: header.seed,
        build_rounds: header.build_rounds,
        landmarks: sections.landmarks,
        balls: sections.balls,
        nearest_landmark: sections.nearest_landmark,
        columns: sections.columns,
    };
    Ok((header, oracle))
}

/// Parses and fully validates the header of a **per-shard** snapshot —
/// including the checksum over shard fields + payload — without building
/// the shard. This is how a router tier inspects a shard file (index,
/// count, set id) before deciding to swap it in.
///
/// # Errors
///
/// * [`OracleError::LegacySnapshot`] for removed v1 bytes.
/// * [`OracleError::CorruptSnapshot`] for monolithic (`CCOS`) bytes, bad
///   magic, truncation, an impossible shard plan (`count == 0`,
///   `count > n`, `index >= count`), or implausible header fields.
/// * [`OracleError::SnapshotVersionMismatch`] /
///   [`OracleError::SnapshotChecksumMismatch`] as for [`peek_header`].
pub fn peek_shard_header(bytes: &[u8]) -> Result<ShardHeader, OracleError> {
    let mut r = Reader { bytes, at: 0 };
    let magic = r.take(4)?;
    if magic == LEGACY_MAGIC {
        return Err(OracleError::LegacySnapshot);
    }
    if magic == SNAPSHOT_MAGIC {
        return Err(corrupt(
            "monolithic snapshot (CCOS) where a per-shard snapshot (CCSH) was expected",
        ));
    }
    if magic != SHARD_MAGIC {
        return Err(corrupt("bad magic (not a shard snapshot)"));
    }
    let version = r.u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(OracleError::SnapshotVersionMismatch {
            found: version,
            supported: SNAPSHOT_VERSION,
        });
    }
    let payload_cap = bytes.len().saturating_sub(SHARD_HEADER_LEN);
    let n = r.len("n", payload_cap)?;
    let k = r.len("k", payload_cap)?;
    let epsilon = f64::from_bits(r.u64()?);
    if epsilon <= 0.0 || !epsilon.is_finite() {
        return Err(corrupt(format!("epsilon {epsilon} out of range")));
    }
    let landmarks = r.len("landmark count", payload_cap)?;
    let seed = r.u64()?;
    let build_rounds = r.u64()?;
    let created_unix_secs = r.u64()?;
    let payload_len = r.u64()?;
    let checksum = r.u64()?;
    debug_assert_eq!(r.at, SHARD_FIELDS_AT);
    if payload_len != payload_cap as u64 {
        return Err(corrupt(format!(
            "header claims a {payload_len}-byte payload but {payload_cap} bytes follow"
        )));
    }
    // The checksum covers everything after itself (shard fields + payload),
    // so corruption in the shard index / count / set id is caught here, not
    // by downstream plan validation alone.
    let computed = fnv1a(&bytes[SHARD_FIELDS_AT..]);
    if computed != checksum {
        return Err(OracleError::SnapshotChecksumMismatch { stored: checksum, computed });
    }
    let shard_index = r.u32()?;
    let shard_count = r.u32()?;
    let set_id = r.u64()?;
    debug_assert_eq!(r.at, SHARD_HEADER_LEN);
    // The plan is a pure function of (n, count); recompute and validate it
    // rather than trusting any serialized range.
    ShardPlan::new(n, shard_count as usize)
        .map_err(|e| corrupt(format!("impossible shard plan: {e}")))?;
    if shard_index >= shard_count {
        return Err(corrupt(format!("shard index {shard_index} outside 0..{shard_count}")));
    }
    Ok(ShardHeader {
        version,
        n,
        k,
        epsilon,
        landmarks,
        seed,
        build_rounds,
        created_unix_secs,
        payload_len,
        checksum,
        shard_index,
        shard_count,
        set_id,
    })
}

/// Reconstructs one shard from a [`to_shard_bytes`] snapshot, validating
/// the header and the payload structure (index bounds, sorted balls,
/// sentinel rules, the owned-range size implied by the recomputed
/// [`ShardPlan`], exact length).
///
/// # Errors
///
/// Everything [`peek_shard_header`] rejects, plus
/// [`OracleError::CorruptSnapshot`] for structural payload damage.
pub fn from_shard_bytes(bytes: &[u8]) -> Result<OracleShard, OracleError> {
    Ok(from_shard_bytes_with_header(bytes)?.1)
}

/// [`from_shard_bytes`] that also returns the validated [`ShardHeader`],
/// so a serving layer can report the loaded shard's identity without
/// re-parsing.
///
/// # Errors
///
/// Same as [`from_shard_bytes`].
pub fn from_shard_bytes_with_header(
    bytes: &[u8],
) -> Result<(ShardHeader, OracleShard), OracleError> {
    let header = peek_shard_header(bytes)?;
    let owned = header.owned();
    let mut r = Reader { bytes, at: SHARD_HEADER_LEN };
    let sections = read_sections(&mut r, header.n, header.landmarks, owned.len())?;
    let shard = OracleShard {
        index: header.shard_index,
        count: header.shard_count,
        start: owned.start,
        n: header.n,
        k: header.k,
        epsilon: header.epsilon,
        seed: header.seed,
        build_rounds: header.build_rounds,
        set_id: header.set_id,
        landmarks: sections.landmarks,
        balls: sections.balls,
        nearest_landmark: sections.nearest_landmark,
        columns: sections.columns,
    };
    Ok((header, shard))
}

/// The parsed payload sections shared by monolithic and per-shard
/// snapshots.
struct Sections {
    landmarks: Vec<u32>,
    nearest_landmark: Vec<(u32, u64)>,
    balls: Vec<Vec<(u32, u64)>>,
    columns: Vec<u64>,
}

/// Parses the payload sections (landmarks → columns), validating index
/// bounds, ball ordering, sentinel rules, and that the reader ends exactly
/// at the end of the input. `rows` is the number of per-node rows present
/// (`n` for a monolithic snapshot, the owned-range size for a shard); ids
/// are always bounded by the full `n`, and the column matrix is always the
/// full `n × s` (replicated into every shard).
fn read_sections(
    r: &mut Reader<'_>,
    n: usize,
    s: usize,
    rows: usize,
) -> Result<Sections, OracleError> {
    let total = r.bytes.len();
    let mut landmarks = Vec::with_capacity(s);
    for _ in 0..s {
        let a = r.u32()?;
        if a as usize >= n {
            return Err(corrupt(format!("landmark id {a} outside 0..{n}")));
        }
        landmarks.push(a);
    }
    let mut nearest_landmark = Vec::with_capacity(rows);
    for v in 0..rows {
        let idx = r.u32()?;
        let d = r.u64()?;
        if idx as usize >= s {
            return Err(corrupt(format!("node row {v}: landmark index {idx} outside 0..{s}")));
        }
        // A nearest-landmark distance is always finite (the hitting set
        // guarantees a landmark inside each ball).
        if d == Dist::INF.raw() {
            return Err(corrupt(format!("node row {v}: infinite nearest-landmark distance")));
        }
        nearest_landmark.push((idx, d));
    }
    let mut balls = Vec::with_capacity(rows);
    for v in 0..rows {
        let len = r.len("ball", total)?;
        let mut ball = Vec::with_capacity(len);
        for _ in 0..len {
            let id = r.u32()?;
            if id as usize >= n {
                return Err(corrupt(format!("node row {v}: ball member {id} outside 0..{n}")));
            }
            let d = r.u64()?;
            // Ball members are reachable by construction, so a distance
            // equal to the ∞ sentinel can only come from corruption — and
            // would make `query` feed the sentinel into `Dist::fin`.
            if d == Dist::INF.raw() {
                return Err(corrupt(format!("node row {v}: infinite ball distance")));
            }
            ball.push((id, d));
        }
        if !ball.is_sorted_by_key(|&(id, _)| id) {
            return Err(corrupt(format!("node row {v}: ball not sorted by id")));
        }
        balls.push(ball);
    }
    let cells = n.checked_mul(s).ok_or_else(|| corrupt("column matrix size overflows"))?;
    // n and s are only individually bounded by the input length, so their
    // product can be quadratic in it; every cell costs 8 bytes, so checking
    // against the bytes actually left keeps the allocation linear in the
    // input even for hostile snapshots.
    if cells > (total - r.at) / 8 {
        return Err(corrupt(format!(
            "column matrix claims {cells} cells but only {} bytes remain",
            total - r.at
        )));
    }
    let mut columns = Vec::with_capacity(cells);
    for _ in 0..cells {
        columns.push(r.u64()?);
    }
    if r.at != total {
        return Err(corrupt(format!("{} trailing bytes", total - r.at)));
    }
    Ok(Sections { landmarks, nearest_landmark, balls, columns })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OracleBuilder;
    use cc_clique::Clique;
    use cc_graph::generators;

    fn sample() -> DistanceOracle {
        let g = generators::gnp_weighted(40, 0.12, 30, 21).unwrap();
        let mut clique = Clique::new(40);
        OracleBuilder::new().epsilon(0.5).seed(5).build(&mut clique, &g).unwrap()
    }

    #[test]
    fn round_trip_is_identity() {
        let oracle = sample();
        let bytes = to_bytes(&oracle);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(oracle, back);
        // And the reloaded oracle answers identically.
        for u in (0..40).step_by(3) {
            for v in (0..40).step_by(5) {
                assert_eq!(oracle.try_query(u, v).unwrap(), back.try_query(u, v).unwrap());
            }
        }
    }

    #[test]
    fn header_describes_the_artifact_and_survives_the_trip() {
        let oracle = sample();
        let bytes = to_bytes_created_at(&oracle, 1_753_000_000);
        let header = peek_header(&bytes).unwrap();
        assert_eq!(header.version, SNAPSHOT_VERSION);
        assert_eq!(header.n, oracle.n());
        assert_eq!(header.k, oracle.k());
        assert_eq!(header.epsilon, oracle.epsilon());
        assert_eq!(header.landmarks, oracle.landmarks().len());
        assert_eq!(header.seed, oracle.seed());
        assert_eq!(header.build_rounds, oracle.build_rounds());
        assert_eq!(header.created_unix_secs, 1_753_000_000);
        assert_eq!(header.payload_len as usize, bytes.len() - HEADER_LEN);
        // from_bytes_with_header agrees with peek_header.
        let (h2, back) = from_bytes_with_header(&bytes).unwrap();
        assert_eq!(h2, header);
        assert_eq!(back, oracle);
        // The build id is the checksum and ignores the write timestamp.
        assert_eq!(header.build_id(), format!("{:016x}", header.checksum));
        assert_eq!(header.checksum, payload_checksum(&oracle));
        let later = peek_header(&to_bytes_created_at(&oracle, 1_999_999_999)).unwrap();
        assert_eq!(later.build_id(), header.build_id());
        assert_eq!(header_of(&oracle).build_id(), header.build_id());
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let oracle = sample();
        let mut bytes = to_bytes(&oracle);
        bytes[0] = b'X';
        assert!(matches!(from_bytes(&bytes), Err(OracleError::CorruptSnapshot { .. })));
        let mut bytes = to_bytes(&oracle);
        bytes[4] = 99;
        assert!(matches!(
            from_bytes(&bytes),
            Err(OracleError::SnapshotVersionMismatch { found: 99, supported: SNAPSHOT_VERSION })
        ));
    }

    #[test]
    fn any_payload_corruption_fails_the_checksum() {
        let oracle = sample();
        let clean = to_bytes(&oracle);
        // Flip one bit at several payload offsets, including ones (like a
        // stored distance value) that would keep the structure valid: the
        // checksum must catch every single one.
        for at in [HEADER_LEN, HEADER_LEN + 13, clean.len() / 2, clean.len() - 1] {
            let mut bytes = clean.clone();
            bytes[at] ^= 0x10;
            assert!(
                matches!(from_bytes(&bytes), Err(OracleError::SnapshotChecksumMismatch { .. })),
                "payload flip at byte {at} must fail the checksum"
            );
        }
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let bytes = to_bytes(&sample());
        for cut in [0, 3, 7, 16, HEADER_LEN - 1, HEADER_LEN, bytes.len() / 2, bytes.len() - 1] {
            assert!(from_bytes(&bytes[..cut]).is_err(), "truncation at {cut} must be rejected");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = to_bytes(&sample());
        bytes.push(0);
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn rejects_out_of_range_indices_behind_a_recomputed_checksum() {
        let oracle = sample();
        let mut bytes = to_bytes(&oracle);
        // Corrupt the first landmark id (right after the header), then
        // recompute the checksum so only the structural validation can
        // catch it.
        bytes[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&(oracle.n() as u32 + 7).to_le_bytes());
        let sum = fnv1a(&bytes[HEADER_LEN..]);
        bytes[72..80].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(from_bytes(&bytes), Err(OracleError::CorruptSnapshot { .. })));
    }

    /// Hand-built v1 bytes (the writer was removed with the reader): magic
    /// `CCO1`, version 1, the legacy scalar block, then a payload prefix.
    /// Truncated or not, structurally valid or not — v1 is rejected by
    /// magic alone, so the rest of the bytes never matters.
    fn crafted_legacy_bytes() -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"CCO1");
        bytes.extend_from_slice(&1u32.to_le_bytes());
        for scalar in [3u64, 1, 7, 0, 0.5f64.to_bits(), 1] {
            bytes.extend_from_slice(&scalar.to_le_bytes());
        }
        bytes.extend_from_slice(&[0u8; 32]);
        bytes
    }

    #[test]
    fn legacy_v1_bytes_are_rejected_never_parsed() {
        let legacy = crafted_legacy_bytes();
        assert!(matches!(from_bytes(&legacy), Err(OracleError::LegacySnapshot)));
        assert!(matches!(peek_header(&legacy), Err(OracleError::LegacySnapshot)));
        // The shard reader names the same problem rather than misreading.
        assert!(matches!(from_shard_bytes(&legacy), Err(OracleError::LegacySnapshot)));
        // Even a bare magic prefix is identified as legacy, not "truncated".
        assert!(matches!(from_bytes(&legacy[..4]), Err(OracleError::LegacySnapshot)));
    }

    fn sample_shards(count: usize) -> Vec<OracleShard> {
        crate::ShardedArtifact::partition(&sample(), count).unwrap().into_shards()
    }

    #[test]
    fn shard_snapshots_round_trip_with_their_identity() {
        let shards = sample_shards(3);
        for shard in &shards {
            let bytes = to_shard_bytes_created_at(shard, 1_753_000_000);
            let header = peek_shard_header(&bytes).unwrap();
            assert_eq!(header.version, SNAPSHOT_VERSION);
            assert_eq!(header.n, shard.n());
            assert_eq!(header.k, shard.k());
            assert_eq!(header.epsilon, shard.epsilon());
            assert_eq!(header.landmarks, shard.landmarks().len());
            assert_eq!(header.shard_index as usize, shard.index());
            assert_eq!(header.shard_count as usize, shard.count());
            assert_eq!(header.set_id, shard.set_id());
            assert_eq!(header.created_unix_secs, 1_753_000_000);
            assert_eq!(header.owned(), shard.owned());
            assert_eq!(header.payload_len as usize, bytes.len() - SHARD_HEADER_LEN);
            let (h2, back) = from_shard_bytes_with_header(&bytes).unwrap();
            assert_eq!(h2, header);
            assert_eq!(&back, shard);
        }
        // Shard build ids are distinct per slice; the set id is shared and
        // equals the monolithic build id; the timestamp changes neither.
        let ids: Vec<String> = shards
            .iter()
            .map(|s| peek_shard_header(&to_shard_bytes_created_at(s, 1)).unwrap().build_id())
            .collect();
        assert_eq!(ids.len(), 3);
        assert_ne!(ids[0], ids[1]);
        let later = peek_shard_header(&to_shard_bytes_created_at(&shards[0], 99)).unwrap();
        assert_eq!(later.build_id(), ids[0]);
        assert_eq!(later.set_build_id(), format!("{:016x}", payload_checksum(&sample())));
    }

    #[test]
    fn shard_and_monolithic_readers_refuse_each_other() {
        let mono = to_bytes(&sample());
        let shard = to_shard_bytes(&sample_shards(2)[0]);
        assert!(matches!(from_bytes(&shard), Err(OracleError::ShardSnapshot)));
        assert!(matches!(peek_header(&shard), Err(OracleError::ShardSnapshot)));
        let err = from_shard_bytes(&mono).unwrap_err();
        assert!(err.to_string().contains("monolithic"), "error must say why: {err}");
    }

    #[test]
    fn shard_checksum_covers_index_count_and_set_id() {
        let clean = to_shard_bytes(&sample_shards(2)[1]);
        // Flip one bit in each shard-specific header field (index at 80,
        // count at 84, set id at 88): the checksum must catch every one —
        // a forged shard index can never parse cleanly.
        for at in [80, 84, 88, 95] {
            let mut bytes = clean.clone();
            bytes[at] ^= 0x04;
            assert!(
                matches!(
                    from_shard_bytes(&bytes),
                    Err(OracleError::SnapshotChecksumMismatch { .. })
                ),
                "shard-field flip at byte {at} must fail the checksum"
            );
        }
    }

    #[test]
    fn shard_truncation_extension_and_bad_version_are_rejected() {
        let bytes = to_shard_bytes(&sample_shards(2)[0]);
        for cut in [0, 3, 7, 16, SHARD_HEADER_LEN - 1, SHARD_HEADER_LEN, bytes.len() - 1] {
            assert!(
                from_shard_bytes(&bytes[..cut]).is_err(),
                "shard truncation at {cut} must be rejected"
            );
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(from_shard_bytes(&extended).is_err());
        let mut wrong_version = bytes;
        wrong_version[4] = 99;
        assert!(matches!(
            from_shard_bytes(&wrong_version),
            Err(OracleError::SnapshotVersionMismatch { found: 99, .. })
        ));
    }

    #[test]
    fn shard_plan_impossibilities_are_rejected_behind_a_recomputed_checksum() {
        let shard = &sample_shards(2)[0];
        // Forge shard_count = n + 1 (an impossible plan) and recompute the
        // checksum so only the plan validation can catch it.
        let mut bytes = to_shard_bytes(shard);
        let bogus_count = shard.n() as u32 + 1;
        bytes[84..88].copy_from_slice(&bogus_count.to_le_bytes());
        let sum = fnv1a(&bytes[80..]);
        bytes[72..80].copy_from_slice(&sum.to_le_bytes());
        let err = from_shard_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("impossible shard plan"), "{err}");

        // Forge a *valid but different* count: the owned-range size no
        // longer matches the payload's row count — structural rejection.
        let mut bytes = to_shard_bytes(shard);
        bytes[84..88].copy_from_slice(&5u32.to_le_bytes());
        let sum = fnv1a(&bytes[80..]);
        bytes[72..80].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(from_shard_bytes(&bytes), Err(OracleError::CorruptSnapshot { .. })));
    }
}
