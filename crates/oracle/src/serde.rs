//! Snapshot an oracle to bytes and load it back — no external serde crate
//! (the build container is offline), just a **versioned, self-describing
//! little-endian layout** with an integrity checksum, so a serving process
//! can refuse a stale or corrupt artifact instead of silently loading it.
//!
//! The byte-level layout is specified in `docs/SNAPSHOT_FORMAT.md` at the
//! workspace root. In short (all integers little-endian):
//!
//! ```text
//! ── header, 80 bytes ─────────────────────────────────────────────
//! magic   b"CCOS"
//! u32     format version (currently 2)
//! u64     n, k; f64 epsilon (IEEE bits); u64 landmark count s
//! u64     seed, build_rounds, created_unix_secs
//! u64     payload_len, payload checksum (FNV-1a 64)
//! ── payload, payload_len bytes ───────────────────────────────────
//! s ×     u32 landmark ids
//! n ×     (u32 idx, u64 dist)          nearest landmark per node
//! n ×     u64 len, len × (u32, u64)    balls
//! n·s ×   u64                          landmark columns (MAX = ∞)
//! ```
//!
//! [`from_bytes`] rejects bad magic, an unsupported version
//! ([`OracleError::SnapshotVersionMismatch`]) and a payload whose checksum
//! disagrees with the header ([`OracleError::SnapshotChecksumMismatch`]),
//! on top of the structural validation (truncation, trailing bytes,
//! out-of-range indices, ∞-sentinel distances) both formats always had.
//!
//! The pre-versioning v1 layout (magic `b"CCO1"`, no build metadata, no
//! checksum) is recognized and reported as [`OracleError::LegacySnapshot`];
//! [`from_bytes_legacy`] still parses it for **one release** so operators
//! can migrate artifacts (load legacy, write back with [`to_bytes`]). See
//! the compatibility policy in `docs/SNAPSHOT_FORMAT.md`.

use crate::error::corrupt;
use crate::{DistanceOracle, OracleError};

/// Magic bytes opening a versioned (v2+) snapshot.
pub const SNAPSHOT_MAGIC: &[u8; 4] = b"CCOS";
/// The snapshot format version this build writes and accepts.
pub const SNAPSHOT_VERSION: u32 = 2;
/// Size of the fixed v2 header in bytes.
pub const HEADER_LEN: usize = 80;

/// Magic bytes of the legacy (v1) format, accepted only by
/// [`from_bytes_legacy`].
const LEGACY_MAGIC: &[u8; 4] = b"CCO1";
const LEGACY_VERSION: u32 = 1;

/// The parsed, validated header of a versioned snapshot: everything an
/// operator (or a serving tier deciding whether to hot-swap) needs to know
/// about an artifact **without** deserializing the payload.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotHeader {
    /// Snapshot format version (currently [`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Number of nodes the artifact covers.
    pub n: usize,
    /// Ball-size parameter `k` of the build.
    pub k: usize,
    /// MSSP accuracy parameter `ε` of the build.
    pub epsilon: f64,
    /// Number of landmarks.
    pub landmarks: usize,
    /// Landmark-selection seed of the build.
    pub seed: u64,
    /// Clique rounds the build charged.
    pub build_rounds: u64,
    /// Unix timestamp (seconds) when the snapshot was written; `0` when
    /// unknown (e.g. a header synthesized for an in-process build).
    pub created_unix_secs: u64,
    /// Length of the payload in bytes.
    pub payload_len: u64,
    /// FNV-1a 64 checksum of the payload bytes.
    pub checksum: u64,
}

impl SnapshotHeader {
    /// The artifact's build id: the payload checksum rendered as 16 hex
    /// digits. Two snapshots of the same built oracle share a build id no
    /// matter when they were written; any payload difference changes it.
    pub fn build_id(&self) -> String {
        format!("{:016x}", self.checksum)
    }
}

/// FNV-1a 64-bit over `bytes` — tiny, dependency-free, and plenty to catch
/// bit rot and truncation (this is an integrity check, not an authenticity
/// one; snapshots come from trusted storage).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }
    fn u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, len: usize) -> Result<&'a [u8], OracleError> {
        let end = self
            .at
            .checked_add(len)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| corrupt(format!("truncated at byte {}", self.at)))?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }
    fn u32(&mut self) -> Result<u32, OracleError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
    fn u64(&mut self) -> Result<u64, OracleError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    fn len(&mut self, what: &str, cap: usize) -> Result<usize, OracleError> {
        let raw = self.u64()?;
        // A length can never exceed the bytes remaining, which bounds
        // allocations from hostile input.
        if raw > cap as u64 {
            return Err(corrupt(format!("{what} length {raw} exceeds plausible {cap}")));
        }
        Ok(raw as usize)
    }
}

/// Serializes the payload section (everything after the header / after the
/// legacy scalars): landmarks, nearest-landmark table, balls, columns.
fn payload_bytes(oracle: &DistanceOracle) -> Vec<u8> {
    let mut w = Writer { buf: Vec::with_capacity(oracle.artifact_bytes() + 16) };
    for &a in &oracle.landmarks {
        w.u32(a);
    }
    for &(idx, d) in &oracle.nearest_landmark {
        w.u32(idx);
        w.u64(d);
    }
    for ball in &oracle.balls {
        w.u64(ball.len() as u64);
        for &(id, d) in ball {
            w.u32(id);
            w.u64(d);
        }
    }
    for &c in &oracle.columns {
        w.u64(c);
    }
    w.buf
}

/// The FNV-1a 64 checksum [`to_bytes`] would store for `oracle`'s payload —
/// i.e. the artifact's build id ([`SnapshotHeader::build_id`]) as a number.
/// Lets a serving layer report a stable build id for an oracle that was
/// built in-process and never touched disk.
pub fn payload_checksum(oracle: &DistanceOracle) -> u64 {
    fnv1a(&payload_bytes(oracle))
}

/// The header [`to_bytes`] would write for `oracle` right now, with
/// `created_unix_secs = 0` (no snapshot has actually been written).
pub fn header_of(oracle: &DistanceOracle) -> SnapshotHeader {
    let payload = payload_bytes(oracle);
    SnapshotHeader {
        version: SNAPSHOT_VERSION,
        n: oracle.n,
        k: oracle.k,
        epsilon: oracle.epsilon,
        landmarks: oracle.landmarks.len(),
        seed: oracle.seed,
        build_rounds: oracle.build_rounds,
        created_unix_secs: 0,
        payload_len: payload.len() as u64,
        checksum: fnv1a(&payload),
    }
}

/// Serializes a built oracle into a self-contained, versioned byte snapshot
/// (format v2: header with build metadata + checksummed payload).
pub fn to_bytes(oracle: &DistanceOracle) -> Vec<u8> {
    let created = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    to_bytes_created_at(oracle, created)
}

/// [`to_bytes`] with an explicit `created_unix_secs` header field, for
/// callers that need byte-for-byte reproducible snapshots (tests, content-
/// addressed artifact stores).
pub fn to_bytes_created_at(oracle: &DistanceOracle, created_unix_secs: u64) -> Vec<u8> {
    let payload = payload_bytes(oracle);
    let mut w = Writer { buf: Vec::with_capacity(HEADER_LEN + payload.len()) };
    w.buf.extend_from_slice(SNAPSHOT_MAGIC);
    w.u32(SNAPSHOT_VERSION);
    w.u64(oracle.n as u64);
    w.u64(oracle.k as u64);
    w.u64(oracle.epsilon.to_bits());
    w.u64(oracle.landmarks.len() as u64);
    w.u64(oracle.seed);
    w.u64(oracle.build_rounds);
    w.u64(created_unix_secs);
    w.u64(payload.len() as u64);
    w.u64(fnv1a(&payload));
    debug_assert_eq!(w.buf.len(), HEADER_LEN);
    w.buf.extend_from_slice(&payload);
    w.buf
}

/// Serializes `oracle` in the **legacy v1 layout** (magic `b"CCO1"`, no
/// metadata, no checksum). Exists only so migration tooling and tests can
/// produce v1 bytes; it is removed together with [`from_bytes_legacy`].
pub fn to_bytes_legacy(oracle: &DistanceOracle) -> Vec<u8> {
    let mut w = Writer { buf: Vec::with_capacity(64 + oracle.artifact_bytes()) };
    w.buf.extend_from_slice(LEGACY_MAGIC);
    w.u32(LEGACY_VERSION);
    w.u64(oracle.n as u64);
    w.u64(oracle.k as u64);
    w.u64(oracle.seed);
    w.u64(oracle.build_rounds);
    w.u64(oracle.epsilon.to_bits());
    w.u64(oracle.landmarks.len() as u64);
    w.buf.extend_from_slice(&payload_bytes(oracle));
    w.buf
}

/// Parses and fully validates the header of a versioned snapshot —
/// including the payload checksum — **without** building the oracle. This
/// is how a serving tier inspects "what am I about to swap in?" cheaply
/// (one linear scan, no allocation proportional to the artifact).
///
/// # Errors
///
/// * [`OracleError::LegacySnapshot`] for v1 bytes (use
///   [`from_bytes_legacy`]).
/// * [`OracleError::SnapshotVersionMismatch`] for a versioned snapshot
///   from a different format generation.
/// * [`OracleError::SnapshotChecksumMismatch`] when the payload does not
///   hash to the header's checksum.
/// * [`OracleError::CorruptSnapshot`] for bad magic, truncation, or
///   implausible header fields.
pub fn peek_header(bytes: &[u8]) -> Result<SnapshotHeader, OracleError> {
    let mut r = Reader { bytes, at: 0 };
    let magic = r.take(4)?;
    if magic == LEGACY_MAGIC {
        return Err(OracleError::LegacySnapshot);
    }
    if magic != SNAPSHOT_MAGIC {
        return Err(corrupt("bad magic (not an oracle snapshot)"));
    }
    let version = r.u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(OracleError::SnapshotVersionMismatch {
            found: version,
            supported: SNAPSHOT_VERSION,
        });
    }
    let payload_cap = bytes.len().saturating_sub(HEADER_LEN);
    let n = r.len("n", payload_cap)?;
    let k = r.len("k", payload_cap)?;
    let epsilon = f64::from_bits(r.u64()?);
    if epsilon <= 0.0 || !epsilon.is_finite() {
        return Err(corrupt(format!("epsilon {epsilon} out of range")));
    }
    let landmarks = r.len("landmark count", payload_cap)?;
    let seed = r.u64()?;
    let build_rounds = r.u64()?;
    let created_unix_secs = r.u64()?;
    let payload_len = r.u64()?;
    let checksum = r.u64()?;
    debug_assert_eq!(r.at, HEADER_LEN);
    if payload_len != payload_cap as u64 {
        return Err(corrupt(format!(
            "header claims a {payload_len}-byte payload but {payload_cap} bytes follow"
        )));
    }
    let computed = fnv1a(&bytes[HEADER_LEN..]);
    if computed != checksum {
        return Err(OracleError::SnapshotChecksumMismatch { stored: checksum, computed });
    }
    Ok(SnapshotHeader {
        version,
        n,
        k,
        epsilon,
        landmarks,
        seed,
        build_rounds,
        created_unix_secs,
        payload_len,
        checksum,
    })
}

/// Reconstructs an oracle from a [`to_bytes`] snapshot, validating the
/// header (magic, version, checksum) and the payload structure (index
/// bounds, sorted balls, sentinel rules, exact length).
///
/// # Errors
///
/// Everything [`peek_header`] rejects, plus
/// [`OracleError::CorruptSnapshot`] for structural payload damage.
pub fn from_bytes(bytes: &[u8]) -> Result<DistanceOracle, OracleError> {
    Ok(from_bytes_with_header(bytes)?.1)
}

/// [`from_bytes`] that also returns the validated [`SnapshotHeader`], so a
/// serving layer can report the loaded artifact's version / build id /
/// creation time without re-parsing.
///
/// # Errors
///
/// Same as [`from_bytes`].
pub fn from_bytes_with_header(
    bytes: &[u8],
) -> Result<(SnapshotHeader, DistanceOracle), OracleError> {
    let header = peek_header(bytes)?;
    let mut r = Reader { bytes, at: HEADER_LEN };
    let oracle = read_body(
        &mut r,
        header.n,
        header.k,
        header.epsilon,
        header.seed,
        header.build_rounds,
        header.landmarks,
    )?;
    Ok((header, oracle))
}

/// Reconstructs an oracle from a **legacy v1** snapshot (magic `b"CCO1"`).
///
/// Kept for exactly one release so existing artifacts can be migrated:
/// load with this, write back with [`to_bytes`]. New code must use
/// [`from_bytes`]; `cc-serve` only falls back to this path behind its
/// explicit `--allow-legacy` flag.
///
/// # Errors
///
/// [`OracleError::CorruptSnapshot`] on wrong magic/version, truncation, or
/// out-of-range indices. (v1 has no checksum: payload bit rot that keeps
/// the structure valid is **not** detected — the reason the format was
/// versioned.)
pub fn from_bytes_legacy(bytes: &[u8]) -> Result<DistanceOracle, OracleError> {
    let mut r = Reader { bytes, at: 0 };
    if r.take(4)? != LEGACY_MAGIC {
        return Err(corrupt("bad magic (not a legacy oracle snapshot)"));
    }
    let version = r.u32()?;
    if version != LEGACY_VERSION {
        return Err(corrupt(format!("unsupported legacy snapshot version {version}")));
    }
    let remaining = bytes.len();
    let n = r.len("n", remaining)?;
    let k = r.len("k", remaining)?;
    let seed = r.u64()?;
    let build_rounds = r.u64()?;
    let epsilon = f64::from_bits(r.u64()?);
    if epsilon <= 0.0 || !epsilon.is_finite() {
        return Err(corrupt(format!("epsilon {epsilon} out of range")));
    }
    let s = r.len("landmark count", remaining)?;
    read_body(&mut r, n, k, epsilon, seed, build_rounds, s)
}

/// Parses the payload section shared by both formats (landmarks → columns),
/// validating index bounds, ball ordering, sentinel rules, and that the
/// reader ends exactly at the end of the input.
fn read_body(
    r: &mut Reader<'_>,
    n: usize,
    k: usize,
    epsilon: f64,
    seed: u64,
    build_rounds: u64,
    s: usize,
) -> Result<DistanceOracle, OracleError> {
    let total = r.bytes.len();
    let mut landmarks = Vec::with_capacity(s);
    for _ in 0..s {
        let a = r.u32()?;
        if a as usize >= n {
            return Err(corrupt(format!("landmark id {a} outside 0..{n}")));
        }
        landmarks.push(a);
    }
    let mut nearest_landmark = Vec::with_capacity(n);
    for v in 0..n {
        let idx = r.u32()?;
        let d = r.u64()?;
        if idx as usize >= s {
            return Err(corrupt(format!("node {v}: landmark index {idx} outside 0..{s}")));
        }
        // u64::MAX is the ∞ sentinel; a nearest-landmark distance is always
        // finite (the hitting set guarantees a landmark inside each ball).
        if d == u64::MAX {
            return Err(corrupt(format!("node {v}: infinite nearest-landmark distance")));
        }
        nearest_landmark.push((idx, d));
    }
    let mut balls = Vec::with_capacity(n);
    for v in 0..n {
        let len = r.len("ball", total)?;
        let mut ball = Vec::with_capacity(len);
        for _ in 0..len {
            let id = r.u32()?;
            if id as usize >= n {
                return Err(corrupt(format!("node {v}: ball member {id} outside 0..{n}")));
            }
            let d = r.u64()?;
            // Ball members are reachable by construction, so a distance
            // equal to the ∞ sentinel can only come from corruption — and
            // would make `query` feed u64::MAX into `Dist::fin`.
            if d == u64::MAX {
                return Err(corrupt(format!("node {v}: infinite ball distance")));
            }
            ball.push((id, d));
        }
        if !ball.is_sorted_by_key(|&(id, _)| id) {
            return Err(corrupt(format!("node {v}: ball not sorted by id")));
        }
        balls.push(ball);
    }
    let cells = n.checked_mul(s).ok_or_else(|| corrupt("column matrix size overflows"))?;
    // n and s are only individually bounded by the input length, so their
    // product can be quadratic in it; every cell costs 8 bytes, so checking
    // against the bytes actually left keeps the allocation linear in the
    // input even for hostile snapshots.
    if cells > (total - r.at) / 8 {
        return Err(corrupt(format!(
            "column matrix claims {cells} cells but only {} bytes remain",
            total - r.at
        )));
    }
    let mut columns = Vec::with_capacity(cells);
    for _ in 0..cells {
        columns.push(r.u64()?);
    }
    if r.at != total {
        return Err(corrupt(format!("{} trailing bytes", total - r.at)));
    }
    Ok(DistanceOracle {
        n,
        k,
        epsilon,
        seed,
        build_rounds,
        landmarks,
        balls,
        nearest_landmark,
        columns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OracleBuilder;
    use cc_clique::Clique;
    use cc_graph::generators;

    fn sample() -> DistanceOracle {
        let g = generators::gnp_weighted(40, 0.12, 30, 21).unwrap();
        let mut clique = Clique::new(40);
        OracleBuilder::new().epsilon(0.5).seed(5).build(&mut clique, &g).unwrap()
    }

    #[test]
    fn round_trip_is_identity() {
        let oracle = sample();
        let bytes = to_bytes(&oracle);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(oracle, back);
        // And the reloaded oracle answers identically.
        for u in (0..40).step_by(3) {
            for v in (0..40).step_by(5) {
                assert_eq!(oracle.query(u, v), back.query(u, v));
            }
        }
    }

    #[test]
    fn header_describes_the_artifact_and_survives_the_trip() {
        let oracle = sample();
        let bytes = to_bytes_created_at(&oracle, 1_753_000_000);
        let header = peek_header(&bytes).unwrap();
        assert_eq!(header.version, SNAPSHOT_VERSION);
        assert_eq!(header.n, oracle.n());
        assert_eq!(header.k, oracle.k());
        assert_eq!(header.epsilon, oracle.epsilon());
        assert_eq!(header.landmarks, oracle.landmarks().len());
        assert_eq!(header.seed, oracle.seed());
        assert_eq!(header.build_rounds, oracle.build_rounds());
        assert_eq!(header.created_unix_secs, 1_753_000_000);
        assert_eq!(header.payload_len as usize, bytes.len() - HEADER_LEN);
        // from_bytes_with_header agrees with peek_header.
        let (h2, back) = from_bytes_with_header(&bytes).unwrap();
        assert_eq!(h2, header);
        assert_eq!(back, oracle);
        // The build id is the checksum and ignores the write timestamp.
        assert_eq!(header.build_id(), format!("{:016x}", header.checksum));
        assert_eq!(header.checksum, payload_checksum(&oracle));
        let later = peek_header(&to_bytes_created_at(&oracle, 1_999_999_999)).unwrap();
        assert_eq!(later.build_id(), header.build_id());
        assert_eq!(header_of(&oracle).build_id(), header.build_id());
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let oracle = sample();
        let mut bytes = to_bytes(&oracle);
        bytes[0] = b'X';
        assert!(matches!(from_bytes(&bytes), Err(OracleError::CorruptSnapshot { .. })));
        let mut bytes = to_bytes(&oracle);
        bytes[4] = 99;
        assert!(matches!(
            from_bytes(&bytes),
            Err(OracleError::SnapshotVersionMismatch { found: 99, supported: SNAPSHOT_VERSION })
        ));
    }

    #[test]
    fn any_payload_corruption_fails_the_checksum() {
        let oracle = sample();
        let clean = to_bytes(&oracle);
        // Flip one bit at several payload offsets, including ones (like a
        // stored distance value) that would keep the structure valid: the
        // checksum must catch every single one.
        for at in [HEADER_LEN, HEADER_LEN + 13, clean.len() / 2, clean.len() - 1] {
            let mut bytes = clean.clone();
            bytes[at] ^= 0x10;
            assert!(
                matches!(from_bytes(&bytes), Err(OracleError::SnapshotChecksumMismatch { .. })),
                "payload flip at byte {at} must fail the checksum"
            );
        }
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let bytes = to_bytes(&sample());
        for cut in [0, 3, 7, 16, HEADER_LEN - 1, HEADER_LEN, bytes.len() / 2, bytes.len() - 1] {
            assert!(from_bytes(&bytes[..cut]).is_err(), "truncation at {cut} must be rejected");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = to_bytes(&sample());
        bytes.push(0);
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn rejects_out_of_range_indices_behind_a_recomputed_checksum() {
        let oracle = sample();
        let mut bytes = to_bytes(&oracle);
        // Corrupt the first landmark id (right after the header), then
        // recompute the checksum so only the structural validation can
        // catch it.
        bytes[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&(oracle.n() as u32 + 7).to_le_bytes());
        let sum = fnv1a(&bytes[HEADER_LEN..]);
        bytes[72..80].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(from_bytes(&bytes), Err(OracleError::CorruptSnapshot { .. })));
    }

    #[test]
    fn legacy_bytes_are_detected_and_only_parsed_explicitly() {
        let oracle = sample();
        let legacy = to_bytes_legacy(&oracle);
        // The strict path names the problem precisely...
        assert!(matches!(from_bytes(&legacy), Err(OracleError::LegacySnapshot)));
        assert!(matches!(peek_header(&legacy), Err(OracleError::LegacySnapshot)));
        // ...and the explicit legacy path round-trips the artifact.
        assert_eq!(from_bytes_legacy(&legacy).unwrap(), oracle);
        // The legacy parser refuses v2 bytes rather than misreading them.
        assert!(from_bytes_legacy(&to_bytes(&oracle)).is_err());
    }

    #[test]
    fn legacy_truncation_and_bad_indices_are_still_rejected() {
        let oracle = sample();
        let legacy = to_bytes_legacy(&oracle);
        for cut in [0, 3, 7, 16, legacy.len() / 2, legacy.len() - 1] {
            assert!(from_bytes_legacy(&legacy[..cut]).is_err(), "legacy truncation at {cut}");
        }
        let mut bytes = legacy.clone();
        // First landmark id lives right after the legacy fixed header
        // (4 magic + 4 version + 6×8 scalar/count fields).
        let at = 4 + 4 + 48;
        bytes[at..at + 4].copy_from_slice(&(oracle.n() as u32 + 7).to_le_bytes());
        assert!(matches!(from_bytes_legacy(&bytes), Err(OracleError::CorruptSnapshot { .. })));
    }
}
