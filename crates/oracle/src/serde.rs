//! Snapshot an oracle to bytes and load it back — no external serde crate
//! (the build container is offline), just a versioned little-endian layout.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   b"CCO1"
//! u32     format version (currently 1)
//! u64     n, k, seed, build_rounds; f64 epsilon (IEEE bits)
//! u64     landmark count s, then s × u32 landmark ids
//! n ×     (u32 idx, u64 dist)          nearest landmark per node
//! n ×     u64 len, len × (u32, u64)    balls
//! n·s ×   u64                          landmark columns (MAX = ∞)
//! ```

use crate::error::corrupt;
use crate::{DistanceOracle, OracleError};

const MAGIC: &[u8; 4] = b"CCO1";
const VERSION: u32 = 1;

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }
    fn u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, len: usize) -> Result<&'a [u8], OracleError> {
        let end = self
            .at
            .checked_add(len)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| corrupt(format!("truncated at byte {}", self.at)))?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }
    fn u32(&mut self) -> Result<u32, OracleError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
    fn u64(&mut self) -> Result<u64, OracleError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    fn len(&mut self, what: &str, cap: usize) -> Result<usize, OracleError> {
        let raw = self.u64()?;
        // A length can never exceed the bytes remaining, which bounds
        // allocations from hostile input.
        if raw > cap as u64 {
            return Err(corrupt(format!("{what} length {raw} exceeds plausible {cap}")));
        }
        Ok(raw as usize)
    }
}

/// Serializes a built oracle into a self-contained byte snapshot.
pub fn to_bytes(oracle: &DistanceOracle) -> Vec<u8> {
    let mut w = Writer { buf: Vec::with_capacity(64 + oracle.artifact_bytes()) };
    w.buf.extend_from_slice(MAGIC);
    w.u32(VERSION);
    w.u64(oracle.n as u64);
    w.u64(oracle.k as u64);
    w.u64(oracle.seed);
    w.u64(oracle.build_rounds);
    w.u64(oracle.epsilon.to_bits());
    w.u64(oracle.landmarks.len() as u64);
    for &a in &oracle.landmarks {
        w.u32(a);
    }
    for &(idx, d) in &oracle.nearest_landmark {
        w.u32(idx);
        w.u64(d);
    }
    for ball in &oracle.balls {
        w.u64(ball.len() as u64);
        for &(id, d) in ball {
            w.u32(id);
            w.u64(d);
        }
    }
    for &c in &oracle.columns {
        w.u64(c);
    }
    w.buf
}

/// Reconstructs an oracle from a [`to_bytes`] snapshot, validating
/// structure and index bounds.
///
/// # Errors
///
/// [`OracleError::CorruptSnapshot`] on wrong magic/version, truncation, or
/// out-of-range indices.
pub fn from_bytes(bytes: &[u8]) -> Result<DistanceOracle, OracleError> {
    let mut r = Reader { bytes, at: 0 };
    if r.take(4)? != MAGIC {
        return Err(corrupt("bad magic (not an oracle snapshot)"));
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(corrupt(format!("unsupported snapshot version {version}")));
    }
    let remaining = bytes.len();
    let n = r.len("n", remaining)?;
    let k = r.len("k", remaining)?;
    let seed = r.u64()?;
    let build_rounds = r.u64()?;
    let epsilon = f64::from_bits(r.u64()?);
    if epsilon <= 0.0 || !epsilon.is_finite() {
        return Err(corrupt(format!("epsilon {epsilon} out of range")));
    }
    let s = r.len("landmark count", remaining)?;
    let mut landmarks = Vec::with_capacity(s);
    for _ in 0..s {
        let a = r.u32()?;
        if a as usize >= n {
            return Err(corrupt(format!("landmark id {a} outside 0..{n}")));
        }
        landmarks.push(a);
    }
    let mut nearest_landmark = Vec::with_capacity(n);
    for v in 0..n {
        let idx = r.u32()?;
        let d = r.u64()?;
        if idx as usize >= s {
            return Err(corrupt(format!("node {v}: landmark index {idx} outside 0..{s}")));
        }
        // u64::MAX is the ∞ sentinel; a nearest-landmark distance is always
        // finite (the hitting set guarantees a landmark inside each ball).
        if d == u64::MAX {
            return Err(corrupt(format!("node {v}: infinite nearest-landmark distance")));
        }
        nearest_landmark.push((idx, d));
    }
    let mut balls = Vec::with_capacity(n);
    for v in 0..n {
        let len = r.len("ball", remaining)?;
        let mut ball = Vec::with_capacity(len);
        for _ in 0..len {
            let id = r.u32()?;
            if id as usize >= n {
                return Err(corrupt(format!("node {v}: ball member {id} outside 0..{n}")));
            }
            let d = r.u64()?;
            // Ball members are reachable by construction, so a distance
            // equal to the ∞ sentinel can only come from corruption — and
            // would make `query` feed u64::MAX into `Dist::fin`.
            if d == u64::MAX {
                return Err(corrupt(format!("node {v}: infinite ball distance")));
            }
            ball.push((id, d));
        }
        if !ball.is_sorted_by_key(|&(id, _)| id) {
            return Err(corrupt(format!("node {v}: ball not sorted by id")));
        }
        balls.push(ball);
    }
    let cells = n.checked_mul(s).ok_or_else(|| corrupt("column matrix size overflows"))?;
    // n and s are only individually bounded by the input length, so their
    // product can be quadratic in it; every cell costs 8 bytes, so checking
    // against the bytes actually left keeps the allocation linear in the
    // input even for hostile snapshots.
    if cells > (bytes.len() - r.at) / 8 {
        return Err(corrupt(format!(
            "column matrix claims {cells} cells but only {} bytes remain",
            bytes.len() - r.at
        )));
    }
    let mut columns = Vec::with_capacity(cells);
    for _ in 0..cells {
        columns.push(r.u64()?);
    }
    if r.at != bytes.len() {
        return Err(corrupt(format!("{} trailing bytes", bytes.len() - r.at)));
    }
    Ok(DistanceOracle {
        n,
        k,
        epsilon,
        seed,
        build_rounds,
        landmarks,
        balls,
        nearest_landmark,
        columns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OracleBuilder;
    use cc_clique::Clique;
    use cc_graph::generators;

    fn sample() -> DistanceOracle {
        let g = generators::gnp_weighted(40, 0.12, 30, 21).unwrap();
        let mut clique = Clique::new(40);
        OracleBuilder::new().epsilon(0.5).seed(5).build(&mut clique, &g).unwrap()
    }

    #[test]
    fn round_trip_is_identity() {
        let oracle = sample();
        let bytes = to_bytes(&oracle);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(oracle, back);
        // And the reloaded oracle answers identically.
        for u in (0..40).step_by(3) {
            for v in (0..40).step_by(5) {
                assert_eq!(oracle.query(u, v), back.query(u, v));
            }
        }
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let oracle = sample();
        let mut bytes = to_bytes(&oracle);
        bytes[0] = b'X';
        assert!(matches!(from_bytes(&bytes), Err(OracleError::CorruptSnapshot { .. })));
        let mut bytes = to_bytes(&oracle);
        bytes[4] = 99;
        assert!(matches!(from_bytes(&bytes), Err(OracleError::CorruptSnapshot { .. })));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let bytes = to_bytes(&sample());
        for cut in [0, 3, 7, 16, bytes.len() / 2, bytes.len() - 1] {
            assert!(from_bytes(&bytes[..cut]).is_err(), "truncation at {cut} must be rejected");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = to_bytes(&sample());
        bytes.push(0);
        assert!(matches!(from_bytes(&bytes), Err(OracleError::CorruptSnapshot { .. })));
    }

    #[test]
    fn rejects_out_of_range_indices() {
        let oracle = sample();
        let mut bytes = to_bytes(&oracle);
        // First landmark id lives right after the fixed header (4 magic +
        // 4 version + 6×8 scalar/count fields).
        let at = 4 + 4 + 48;
        bytes[at..at + 4].copy_from_slice(&(oracle.n() as u32 + 7).to_le_bytes());
        assert!(matches!(from_bytes(&bytes), Err(OracleError::CorruptSnapshot { .. })));
    }
}
