//! The serving contract every query tier implements: [`QueryBackend`].
//!
//! The paper's build-once / query-many structure means every serving
//! arrangement of the artifact — the monolithic [`DistanceOracle`], the
//! sharded [`ShardRouter`], and either of them behind a
//! [`crate::CachingOracle`] — answers the *same* fallible query contract.
//! This module names that contract once, object-safely, so a serving layer
//! (like `cc-serve`) can hold a `Box<dyn QueryBackend>` and never branch on
//! which tier it is fronting, and so alternative approximation backends can
//! plug in later without touching the HTTP layer.
//!
//! # The contract
//!
//! * [`QueryBackend::try_query`] / [`QueryBackend::try_query_batch`] are
//!   **fallible-first**: an endpoint outside `0..n` is
//!   [`OracleError::QueryOutOfRange`], never a panic. Answers must be
//!   bit-identical across backends serving the same artifact — the
//!   `tests/backend_equivalence.rs` suite pins this down for every in-repo
//!   implementation.
//! * [`QueryBackend::n`] bounds the id space, so wrappers (caches, routers)
//!   can validate without knowing the concrete backend.
//! * [`QueryBackend::descriptor`] reports what is being served — mode,
//!   build parameters, stretch guarantee, per-shard layout, cache counters
//!   — so `/stats`- and `/artifact`-style endpoints are written once
//!   against the trait.
//!
//! # Example: dispatch over erased backends
//!
//! ```
//! use cc_clique::Clique;
//! use cc_graph::generators;
//! use cc_oracle::{CachingOracle, OracleBuilder, QueryBackend, ShardedArtifact};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = generators::gnp_weighted(24, 0.2, 30, 7)?;
//! let mut clique = Clique::new(24);
//! let oracle = OracleBuilder::new().build(&mut clique, &g)?;
//!
//! // Three tiers, one contract: answers are bit-identical.
//! let backends: Vec<Box<dyn QueryBackend>> = vec![
//!     Box::new(oracle.clone()),
//!     Box::new(ShardedArtifact::partition(&oracle, 3)?.into_router()?),
//!     Box::new(CachingOracle::new(oracle.clone(), 1024)),
//! ];
//! for backend in &backends {
//!     assert_eq!(backend.try_query(0, 23)?, oracle.try_query(0, 23)?);
//! }
//! # Ok(())
//! # }
//! ```

use cc_matrix::Dist;

use crate::cache::CacheStats;
use crate::shard::ShardRouter;
use crate::{CachingOracle, DistanceOracle, OracleError};

/// What one shard of a routed backend serves, as reported by
/// [`BackendDescriptor::shards`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardDescriptor {
    /// The shard's slot in its set.
    pub index: usize,
    /// First node the shard owns.
    pub owned_start: usize,
    /// Number of contiguous nodes the shard owns.
    pub owned_len: usize,
    /// Heap footprint of the slice in bytes.
    pub artifact_bytes: usize,
    /// Identity of the artifact generation the slice was cut from.
    pub set_id: u64,
}

/// A self-description of a serving backend: everything a `/stats` or
/// `/artifact` endpoint reports, with no downcasting.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendDescriptor {
    /// The serving tier: `"mono"` for a monolithic oracle, `"router"` for a
    /// shard set. A caching wrapper keeps its inner backend's mode.
    pub mode: &'static str,
    /// Number of nodes the backend covers.
    pub n: usize,
    /// The ball-size parameter `k` of the underlying build.
    pub k: usize,
    /// The MSSP accuracy parameter `ε` of the underlying build; for a
    /// mixed-generation routed set, the largest `ε` across slices (the
    /// weakest accuracy actually served mid-roll).
    pub epsilon: f64,
    /// Number of landmarks in the underlying build.
    pub landmark_count: usize,
    /// Heap footprint in bytes (summed over shards for a router).
    pub artifact_bytes: usize,
    /// The documented multiplicative stretch bound `3·(1+ε)`; for a
    /// mixed-generation routed set, the weakest (largest) bound across
    /// slices.
    pub stretch_bound: f64,
    /// Clique rounds the one-off build phase charged.
    pub build_rounds: u64,
    /// The landmark-selection seed of the build.
    pub seed: u64,
    /// Per-shard layout, in slot order; empty for a monolithic backend.
    pub shards: Vec<ShardDescriptor>,
    /// Result-cache counters, when a [`CachingOracle`] fronts the backend.
    pub cache: Option<CacheStats>,
}

impl BackendDescriptor {
    /// True when every shard was cut from the same artifact generation
    /// (trivially true for a monolithic backend). During a rolling rollout
    /// a router reports `false` here until the last slice is swapped.
    pub fn set_uniform(&self) -> bool {
        self.shards.windows(2).all(|w| w[0].set_id == w[1].set_id)
    }
}

/// The object-safe query contract every serving tier implements; see the
/// [module docs](self) for the guarantees and an example.
///
/// Implementations must be `Send + Sync`: a backend is shared across worker
/// threads by the serving layer.
pub trait QueryBackend: Send + Sync {
    /// Number of nodes the backend covers; queries must name endpoints in
    /// `0..n`.
    fn n(&self) -> usize;

    /// Distance estimate for the pair `(u, v)`; identical answers across
    /// every backend serving the same artifact.
    ///
    /// # Errors
    ///
    /// [`OracleError::QueryOutOfRange`] if `u` or `v` is not in `0..n`.
    fn try_query(&self, u: usize, v: usize) -> Result<Dist, OracleError>;

    /// Answers a batch in request order. Validates every pair up front:
    /// either the whole batch is answered or nothing is computed.
    ///
    /// The default implementation validates and then answers pair-by-pair;
    /// backends with a cheaper bulk path (threaded sharding, one snapshot
    /// of mutable state for the whole batch) should override it.
    ///
    /// # Errors
    ///
    /// [`OracleError::QueryOutOfRange`] naming the first offending pair.
    fn try_query_batch(&self, pairs: &[(usize, usize)]) -> Result<Vec<Dist>, OracleError> {
        let n = self.n();
        for &(u, v) in pairs {
            if u >= n || v >= n {
                return Err(OracleError::QueryOutOfRange { u, v, n });
            }
        }
        pairs.iter().map(|&(u, v)| self.try_query(u, v)).collect()
    }

    /// What this backend serves: mode, build parameters, per-shard layout,
    /// cache counters. Called per monitoring request, so it should be cheap
    /// (no artifact traversal beyond summing per-shard sizes).
    fn descriptor(&self) -> BackendDescriptor;
}

impl QueryBackend for DistanceOracle {
    fn n(&self) -> usize {
        DistanceOracle::n(self)
    }

    fn try_query(&self, u: usize, v: usize) -> Result<Dist, OracleError> {
        DistanceOracle::try_query(self, u, v)
    }

    fn try_query_batch(&self, pairs: &[(usize, usize)]) -> Result<Vec<Dist>, OracleError> {
        DistanceOracle::try_query_batch(self, pairs)
    }

    fn descriptor(&self) -> BackendDescriptor {
        BackendDescriptor {
            mode: "mono",
            n: self.n(),
            k: self.k(),
            epsilon: self.epsilon(),
            landmark_count: self.landmarks().len(),
            artifact_bytes: self.artifact_bytes(),
            stretch_bound: self.stretch_bound(),
            build_rounds: self.build_rounds(),
            seed: self.seed(),
            shards: Vec::new(),
            cache: None,
        }
    }
}

impl QueryBackend for ShardRouter {
    fn n(&self) -> usize {
        ShardRouter::n(self)
    }

    fn try_query(&self, u: usize, v: usize) -> Result<Dist, OracleError> {
        ShardRouter::try_query(self, u, v)
    }

    fn try_query_batch(&self, pairs: &[(usize, usize)]) -> Result<Vec<Dist>, OracleError> {
        ShardRouter::try_query_batch(self, pairs)
    }

    fn descriptor(&self) -> BackendDescriptor {
        let first = &self.shards()[0];
        // During a rolling rollout the slices may come from builds with
        // different ε: report the **weakest** guarantee actually served,
        // not shard 0's (for a uniform set they coincide).
        let epsilon = self.shards().iter().map(|s| s.epsilon()).fold(f64::MIN, f64::max);
        let stretch_bound =
            self.shards().iter().map(|s| s.stretch_bound()).fold(f64::MIN, f64::max);
        BackendDescriptor {
            mode: "router",
            n: self.n(),
            k: first.k(),
            epsilon,
            landmark_count: first.landmarks().len(),
            artifact_bytes: self.shards().iter().map(|s| s.artifact_bytes()).sum(),
            stretch_bound,
            build_rounds: first.build_rounds(),
            seed: first.seed(),
            shards: self
                .shards()
                .iter()
                .map(|s| ShardDescriptor {
                    index: s.index(),
                    owned_start: s.owned().start,
                    owned_len: s.owned().len(),
                    artifact_bytes: s.artifact_bytes(),
                    set_id: s.set_id(),
                })
                .collect(),
            cache: None,
        }
    }
}

impl<B: QueryBackend> QueryBackend for CachingOracle<B> {
    fn n(&self) -> usize {
        CachingOracle::n(self)
    }

    fn try_query(&self, u: usize, v: usize) -> Result<Dist, OracleError> {
        CachingOracle::try_query(self, u, v)
    }

    fn try_query_batch(&self, pairs: &[(usize, usize)]) -> Result<Vec<Dist>, OracleError> {
        CachingOracle::try_query_batch(self, pairs)
    }

    fn descriptor(&self) -> BackendDescriptor {
        BackendDescriptor { cache: Some(self.stats()), ..self.inner().descriptor() }
    }
}

/// Boxed backends dispatch through to the boxed value, so
/// `CachingOracle<Box<dyn QueryBackend>>` — a cache over *any* tier — and
/// nested erasure both work.
impl<B: QueryBackend + ?Sized> QueryBackend for Box<B> {
    fn n(&self) -> usize {
        (**self).n()
    }

    fn try_query(&self, u: usize, v: usize) -> Result<Dist, OracleError> {
        (**self).try_query(u, v)
    }

    fn try_query_batch(&self, pairs: &[(usize, usize)]) -> Result<Vec<Dist>, OracleError> {
        (**self).try_query_batch(pairs)
    }

    fn descriptor(&self) -> BackendDescriptor {
        (**self).descriptor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OracleBuilder, ShardedArtifact};
    use cc_clique::Clique;
    use cc_graph::generators;

    fn build(n: usize, seed: u64) -> DistanceOracle {
        let g = generators::gnp_weighted(n, 0.15, 30, seed).unwrap();
        let mut clique = Clique::new(n);
        OracleBuilder::new().seed(seed).build(&mut clique, &g).unwrap()
    }

    #[test]
    fn erased_backends_agree_with_the_concrete_oracle() {
        let oracle = build(20, 3);
        let router = ShardedArtifact::partition(&oracle, 3).unwrap().into_router().unwrap();
        let backends: Vec<Box<dyn QueryBackend>> = vec![
            Box::new(oracle.clone()),
            Box::new(router.clone()),
            Box::new(CachingOracle::new(oracle.clone(), 256)),
            Box::new(CachingOracle::new(router, 256)),
        ];
        for backend in &backends {
            assert_eq!(backend.n(), 20);
            for u in 0..20 {
                for v in 0..20 {
                    assert_eq!(
                        backend.try_query(u, v).unwrap(),
                        oracle.try_query(u, v).unwrap(),
                        "({u},{v}) via {}",
                        backend.descriptor().mode
                    );
                }
            }
            assert!(backend.try_query(0, 20).is_err());
            let pairs: Vec<(usize, usize)> = (0..20).map(|i| (i, (i * 7 + 3) % 20)).collect();
            assert_eq!(
                backend.try_query_batch(&pairs).unwrap(),
                oracle.try_query_batch(&pairs).unwrap()
            );
            let mut bad = pairs;
            bad.push((0, 20));
            assert!(backend.try_query_batch(&bad).is_err());
        }
    }

    #[test]
    fn descriptors_name_the_tier_and_the_build() {
        let oracle = build(21, 5);
        let mono = oracle.descriptor();
        assert_eq!(mono.mode, "mono");
        assert_eq!(mono.n, 21);
        assert_eq!(mono.k, oracle.k());
        assert_eq!(mono.landmark_count, oracle.landmarks().len());
        assert_eq!(mono.artifact_bytes, oracle.artifact_bytes());
        assert!(mono.shards.is_empty());
        assert!(mono.cache.is_none());
        assert!(mono.set_uniform());

        let router = ShardedArtifact::partition(&oracle, 3).unwrap().into_router().unwrap();
        let routed = router.descriptor();
        assert_eq!(routed.mode, "router");
        assert_eq!(routed.n, 21);
        assert_eq!(routed.shards.len(), 3);
        assert!(routed.set_uniform());
        assert_eq!(
            routed.shards.iter().map(|s| s.owned_len).sum::<usize>(),
            21,
            "shards must cover every node"
        );
        assert_eq!(
            routed.artifact_bytes,
            routed.shards.iter().map(|s| s.artifact_bytes).sum::<usize>()
        );

        // A cache keeps the inner mode and adds its counters.
        let cached = CachingOracle::new(router, 64);
        cached.try_query(0, 7).unwrap();
        cached.try_query(0, 7).unwrap();
        let desc = cached.descriptor();
        assert_eq!(desc.mode, "router");
        let stats = desc.cache.expect("cached backend must report cache stats");
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn boxed_dispatch_is_transparent() {
        let oracle = build(12, 9);
        let boxed: Box<dyn QueryBackend> = Box::new(oracle.clone());
        let rebox: Box<Box<dyn QueryBackend>> = Box::new(boxed);
        assert_eq!(rebox.n(), 12);
        assert_eq!(rebox.try_query(1, 11).unwrap(), oracle.try_query(1, 11).unwrap());
        assert_eq!(rebox.descriptor(), oracle.descriptor());
    }
}
