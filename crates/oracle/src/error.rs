//! Error type for oracle construction, queries and snapshots.

use cc_distance::DistanceError;

/// Everything that can go wrong building, querying or deserializing an
/// oracle.
#[derive(Debug)]
pub enum OracleError {
    /// A distributed substrate (k-nearest, hitting set, MSSP) failed.
    Build(DistanceError),
    /// A parameter was rejected before any clique communication happened.
    InvalidParameter {
        /// Human-readable description of the rejected parameter.
        what: String,
    },
    /// A serialized artifact failed validation.
    CorruptSnapshot {
        /// What was wrong with the byte stream.
        what: String,
    },
    /// A versioned snapshot was written by a different format generation
    /// than this build supports.
    SnapshotVersionMismatch {
        /// The version recorded in the snapshot header.
        found: u32,
        /// The version this build reads and writes.
        supported: u32,
    },
    /// The snapshot payload does not hash to the checksum recorded in its
    /// header: the bytes were corrupted (bit rot, torn write, truncated
    /// copy) after they were written.
    SnapshotChecksumMismatch {
        /// Checksum recorded in the header.
        stored: u64,
        /// Checksum computed over the payload actually present.
        computed: u64,
    },
    /// The bytes are a pre-versioning (v1, magic `CCO1`) snapshot. The v1
    /// reader was removed after its one-release migration window (see
    /// `docs/SNAPSHOT_FORMAT.md`); rebuild the artifact and write a current
    /// snapshot.
    LegacySnapshot,
    /// The bytes are a **per-shard** snapshot (magic `CCSH`): one slice of a
    /// sharded artifact set, not a complete oracle. Load it with
    /// `serde::from_shard_bytes` and assemble the set behind a
    /// `shard::ShardRouter`.
    ShardSnapshot,
    /// A shard snapshot declared a different shard index than the slot it
    /// was loaded into — e.g. shard 2's file offered as shard 0 of the set.
    ShardIndexMismatch {
        /// The slot the caller was filling.
        expected: u32,
        /// The index the snapshot declares for itself.
        found: u32,
    },
    /// The shards offered as one set do not describe the same artifact:
    /// they disagree on `n`, `k`, `ε`, the landmark set, the shard count,
    /// or the set id (the parent artifact's build id).
    ShardSetMismatch {
        /// Which field disagreed, and how.
        what: String,
    },
    /// A query named a node outside `0..n`. Returned by the fallible
    /// `try_query` family so a serving layer can map bad requests to a
    /// client error instead of panicking the process.
    QueryOutOfRange {
        /// First endpoint of the rejected pair.
        u: usize,
        /// Second endpoint of the rejected pair.
        v: usize,
        /// Number of nodes the oracle covers.
        n: usize,
    },
}

impl std::fmt::Display for OracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleError::Build(e) => write!(f, "oracle build failed: {e}"),
            OracleError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
            OracleError::CorruptSnapshot { what } => write!(f, "corrupt snapshot: {what}"),
            OracleError::SnapshotVersionMismatch { found, supported } => {
                write!(f, "snapshot format version {found} is not supported (this build reads v{supported})")
            }
            OracleError::SnapshotChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "snapshot checksum mismatch: header says {stored:016x}, payload hashes to {computed:016x}"
                )
            }
            OracleError::LegacySnapshot => {
                write!(
                    f,
                    "legacy (v1) snapshot: the v1 reader was removed; rebuild the artifact \
                     and write a current-format snapshot"
                )
            }
            OracleError::ShardSnapshot => {
                write!(
                    f,
                    "per-shard snapshot: one slice of a sharded artifact set, not a complete \
                     oracle; load it via from_shard_bytes and route through a ShardRouter"
                )
            }
            OracleError::ShardIndexMismatch { expected, found } => {
                write!(
                    f,
                    "shard snapshot declares index {found} but was loaded as shard {expected}"
                )
            }
            OracleError::ShardSetMismatch { what } => {
                write!(f, "inconsistent shard set: {what}")
            }
            OracleError::QueryOutOfRange { u, v, n } => {
                write!(f, "query ({u}, {v}) outside 0..{n}")
            }
        }
    }
}

impl std::error::Error for OracleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OracleError::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DistanceError> for OracleError {
    fn from(e: DistanceError) -> Self {
        OracleError::Build(e)
    }
}

pub(crate) fn invalid(what: impl Into<String>) -> OracleError {
    OracleError::InvalidParameter { what: what.into() }
}

pub(crate) fn corrupt(what: impl Into<String>) -> OracleError {
    OracleError::CorruptSnapshot { what: what.into() }
}

pub(crate) fn set_mismatch(what: impl Into<String>) -> OracleError {
    OracleError::ShardSetMismatch { what: what.into() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        assert!(invalid("k = 0").to_string().contains("k = 0"));
        assert!(corrupt("bad magic").to_string().contains("bad magic"));
        let e = OracleError::QueryOutOfRange { u: 3, v: 99, n: 16 };
        assert_eq!(e.to_string(), "query (3, 99) outside 0..16");
        let e = OracleError::SnapshotVersionMismatch { found: 7, supported: 2 };
        assert!(e.to_string().contains("version 7"), "{e}");
        assert!(e.to_string().contains("v2"), "{e}");
        let e = OracleError::SnapshotChecksumMismatch { stored: 0xabcd, computed: 0x1234 };
        assert!(e.to_string().contains("000000000000abcd"), "{e}");
        assert!(e.to_string().contains("0000000000001234"), "{e}");
        assert!(OracleError::LegacySnapshot.to_string().contains("legacy"));
        assert!(OracleError::ShardSnapshot.to_string().contains("ShardRouter"));
        let e = OracleError::ShardIndexMismatch { expected: 0, found: 2 };
        assert!(e.to_string().contains("index 2"), "{e}");
        assert!(e.to_string().contains("shard 0"), "{e}");
        let e = set_mismatch("shard 1: n = 16 but the set has n = 32");
        assert!(e.to_string().contains("inconsistent shard set"), "{e}");
        assert!(e.to_string().contains("n = 16"), "{e}");
    }
}
