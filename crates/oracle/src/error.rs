//! Error type for oracle construction, queries and snapshots.

use cc_distance::DistanceError;

/// Everything that can go wrong building, querying or deserializing an
/// oracle.
#[derive(Debug)]
pub enum OracleError {
    /// A distributed substrate (k-nearest, hitting set, MSSP) failed.
    Build(DistanceError),
    /// A parameter was rejected before any clique communication happened.
    InvalidParameter {
        /// Human-readable description of the rejected parameter.
        what: String,
    },
    /// A serialized artifact failed validation.
    CorruptSnapshot {
        /// What was wrong with the byte stream.
        what: String,
    },
    /// A versioned snapshot was written by a different format generation
    /// than this build supports.
    SnapshotVersionMismatch {
        /// The version recorded in the snapshot header.
        found: u32,
        /// The version this build reads and writes.
        supported: u32,
    },
    /// The snapshot payload does not hash to the checksum recorded in its
    /// header: the bytes were corrupted (bit rot, torn write, truncated
    /// copy) after they were written.
    SnapshotChecksumMismatch {
        /// Checksum recorded in the header.
        stored: u64,
        /// Checksum computed over the payload actually present.
        computed: u64,
    },
    /// The bytes are a pre-versioning (v1, magic `CCO1`) snapshot. They are
    /// not accepted implicitly; callers that really mean to load one must
    /// use `serde::from_bytes_legacy` (kept for one release).
    LegacySnapshot,
    /// A query named a node outside `0..n`. Returned by the fallible
    /// `try_query` family so a serving layer can map bad requests to a
    /// client error instead of panicking the process.
    QueryOutOfRange {
        /// First endpoint of the rejected pair.
        u: usize,
        /// Second endpoint of the rejected pair.
        v: usize,
        /// Number of nodes the oracle covers.
        n: usize,
    },
}

impl std::fmt::Display for OracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleError::Build(e) => write!(f, "oracle build failed: {e}"),
            OracleError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
            OracleError::CorruptSnapshot { what } => write!(f, "corrupt snapshot: {what}"),
            OracleError::SnapshotVersionMismatch { found, supported } => {
                write!(f, "snapshot format version {found} is not supported (this build reads v{supported})")
            }
            OracleError::SnapshotChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "snapshot checksum mismatch: header says {stored:016x}, payload hashes to {computed:016x}"
                )
            }
            OracleError::LegacySnapshot => {
                write!(
                    f,
                    "legacy (v1) snapshot: not loaded implicitly; migrate it via from_bytes_legacy"
                )
            }
            OracleError::QueryOutOfRange { u, v, n } => {
                write!(f, "query ({u}, {v}) outside 0..{n}")
            }
        }
    }
}

impl std::error::Error for OracleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OracleError::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DistanceError> for OracleError {
    fn from(e: DistanceError) -> Self {
        OracleError::Build(e)
    }
}

pub(crate) fn invalid(what: impl Into<String>) -> OracleError {
    OracleError::InvalidParameter { what: what.into() }
}

pub(crate) fn corrupt(what: impl Into<String>) -> OracleError {
    OracleError::CorruptSnapshot { what: what.into() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        assert!(invalid("k = 0").to_string().contains("k = 0"));
        assert!(corrupt("bad magic").to_string().contains("bad magic"));
        let e = OracleError::QueryOutOfRange { u: 3, v: 99, n: 16 };
        assert_eq!(e.to_string(), "query (3, 99) outside 0..16");
        let e = OracleError::SnapshotVersionMismatch { found: 7, supported: 2 };
        assert!(e.to_string().contains("version 7"), "{e}");
        assert!(e.to_string().contains("v2"), "{e}");
        let e = OracleError::SnapshotChecksumMismatch { stored: 0xabcd, computed: 0x1234 };
        assert!(e.to_string().contains("000000000000abcd"), "{e}");
        assert!(e.to_string().contains("0000000000001234"), "{e}");
        assert!(OracleError::LegacySnapshot.to_string().contains("legacy"));
    }
}
