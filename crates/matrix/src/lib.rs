//! # `cc-matrix`: semirings and sparse matrices for distance computation
//!
//! The algorithms of *Fast Approximate Shortest Paths in the Congested
//! Clique* (PODC 2019) reduce distance computation to matrix multiplication
//! over semirings. This crate provides:
//!
//! * the [`Semiring`] abstraction, with the three instances the paper uses —
//!   the **min-plus (tropical) semiring** over [`Dist`], the **augmented
//!   min-plus semiring** over [`AugDist`] `(weight, hops)` pairs (§3.1), and
//!   the **boolean semiring** (used to define cancellation-free output
//!   density, §2.1);
//! * [`SparseRow`] / [`SparseMatrix`]: the row-sparse matrix representation
//!   the Congested Clique algorithms distribute (node `v` holds row `v`),
//!   with the paper's density measure `ρ` and ρ-filtering (§2.2);
//! * a sequential reference [`SparseMatrix::multiply`] used by differential
//!   tests against the distributed algorithms.
//!
//! # Example: distance product
//!
//! ```
//! use cc_matrix::{Dist, MinPlus, Semiring, SparseMatrix};
//!
//! // 0 --1-- 1 --2-- 2 as a weight matrix.
//! let mut w = SparseMatrix::<Dist>::identity::<MinPlus>(3);
//! w.set(0, 1, Dist::fin(1));
//! w.set(1, 0, Dist::fin(1));
//! w.set(1, 2, Dist::fin(2));
//! w.set(2, 1, Dist::fin(2));
//!
//! let w2 = w.multiply::<MinPlus>(&w);
//! assert_eq!(w2.get(0, 2), Some(&Dist::fin(3))); // two-hop path 0-1-2
//! ```
//!
//! Unsafe code is forbidden (`#![forbid(unsafe_code)]`), as across the
//! whole workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod elem;
mod semiring;
mod sparse;

pub use elem::{AugDist, Dist, Entry, Searchable, WitnessedDist};
pub use semiring::{AugMinPlus, Boolean, MinPlus, OrderedSemiring, Semiring, WitnessedMinPlus};
pub use sparse::{SparseMatrix, SparseRow};
