use std::cmp::Ordering;
use std::fmt::Debug;

use cc_clique::Payload;

use crate::{AugDist, Dist, WitnessedDist};

/// A semiring `(R, +, ·, 0, 1)` whose elements fit in an `O(log n)`-bit
/// message (§1.5 of the paper).
///
/// `0` is the additive identity (and the "zero" that sparse matrices omit);
/// `1` is the multiplicative identity. Multiplication need not commute.
/// Implementations are stateless marker types; all operations are associated
/// functions so that algorithms can be generic over the semiring while
/// storing plain element values.
///
/// # Example
///
/// ```
/// use cc_matrix::{Dist, MinPlus, Semiring};
///
/// let d = MinPlus::add(&Dist::fin(3), &Dist::fin(5));
/// assert_eq!(d, Dist::fin(3)); // min
/// let d = MinPlus::mul(&Dist::fin(3), &Dist::fin(5));
/// assert_eq!(d, Dist::fin(8)); // plus
/// ```
pub trait Semiring: Clone + Debug + 'static {
    /// The element type.
    type Elem: Clone + PartialEq + Debug + Payload + Send + Sync + 'static;

    /// The additive identity (sparse matrices omit this value).
    fn zero() -> Self::Elem;
    /// The multiplicative identity.
    fn one() -> Self::Elem;
    /// Semiring addition.
    fn add(a: &Self::Elem, b: &Self::Elem) -> Self::Elem;
    /// Semiring multiplication.
    fn mul(a: &Self::Elem, b: &Self::Elem) -> Self::Elem;

    /// Whether `e` is the additive identity.
    fn is_zero(e: &Self::Elem) -> bool {
        *e == Self::zero()
    }
}

/// A semiring with a total order under which addition is `min` (§2.2).
///
/// This is the precondition of the paper's *filtered* matrix multiplication
/// (Theorem 14): rows of the output can be meaningfully truncated to their
/// `ρ` smallest entries. The additive identity must be the maximum of the
/// order.
pub trait OrderedSemiring: Semiring {
    /// Total order on elements; `add(a, b)` equals the smaller of `a, b`.
    fn cmp_elems(a: &Self::Elem, b: &Self::Elem) -> Ordering;

    /// The smaller of two elements under [`OrderedSemiring::cmp_elems`].
    fn min_elem(a: Self::Elem, b: Self::Elem) -> Self::Elem {
        if Self::cmp_elems(&a, &b) == Ordering::Greater {
            b
        } else {
            a
        }
    }
}

/// The min-plus (tropical) semiring over [`Dist`]: `(ℕ∪{∞}, min, +, ∞, 0)`.
///
/// Powers of a weight matrix over this semiring are exact shortest-path
/// distances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MinPlus;

impl Semiring for MinPlus {
    type Elem = Dist;

    fn zero() -> Dist {
        Dist::INF
    }
    fn one() -> Dist {
        Dist::ZERO
    }
    fn add(a: &Dist, b: &Dist) -> Dist {
        *a.min(b)
    }
    fn mul(a: &Dist, b: &Dist) -> Dist {
        a.checked_add(*b)
    }
}

impl OrderedSemiring for MinPlus {
    fn cmp_elems(a: &Dist, b: &Dist) -> Ordering {
        a.cmp(b)
    }
}

/// The augmented min-plus semiring over [`AugDist`] (§3.1): elements are
/// `(weight, hops)` pairs, addition is lexicographic `min`, multiplication
/// adds componentwise.
///
/// Iterated powers of the augmented weight matrix compute hop-bounded
/// distances with consistent tie-breaking (Lemma 17), which is what the
/// `k`-nearest and source-detection tools build on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AugMinPlus;

impl Semiring for AugMinPlus {
    type Elem = AugDist;

    fn zero() -> AugDist {
        AugDist::INF
    }
    fn one() -> AugDist {
        AugDist::ZERO
    }
    fn add(a: &AugDist, b: &AugDist) -> AugDist {
        *a.min(b)
    }
    fn mul(a: &AugDist, b: &AugDist) -> AugDist {
        a.combine(*b)
    }
}

impl OrderedSemiring for AugMinPlus {
    fn cmp_elems(a: &AugDist, b: &AugDist) -> Ordering {
        a.cmp(b)
    }
}

/// The witness-tracking min-plus semiring over [`WitnessedDist`] (§3.1,
/// "Recovering paths").
///
/// Addition is `min` by `(dist, via)`; multiplication adds distances and
/// keeps the **rightmost recorded** witness (the right operand's, falling
/// back to the left's). Products `P = S ⋆ T` with the right operand's
/// entries tagged by their row index therefore record, per output entry, a
/// contraction index achieving the minimum (see
/// `cc_distance::product_with_witnesses`).
///
/// Infinite results are canonicalised to [`WitnessedDist::INF`] so the
/// additive identity stays unique and annihilation holds exactly.
///
/// **Algebraic status.** Projected to distances this is exactly
/// [`MinPlus`] (a semiring homomorphism), and identities, associativity
/// and additive laws hold on the full pairs. Distributivity can differ in
/// the *witness component only* when tagged and untagged values of equal
/// distance mix — a case the distributed pipeline never produces (right
/// operands are uniformly tagged) and which would still yield a valid
/// witness; the distance component is always lawful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WitnessedMinPlus;

impl Semiring for WitnessedMinPlus {
    type Elem = WitnessedDist;

    fn zero() -> WitnessedDist {
        WitnessedDist::INF
    }
    fn one() -> WitnessedDist {
        WitnessedDist::ZERO
    }
    fn add(a: &WitnessedDist, b: &WitnessedDist) -> WitnessedDist {
        *a.min(b)
    }
    fn mul(a: &WitnessedDist, b: &WitnessedDist) -> WitnessedDist {
        if !a.is_finite() || !b.is_finite() {
            return WitnessedDist::INF;
        }
        WitnessedDist {
            dist: a.dist.checked_add(b.dist).expect("distance overflow"),
            via: if b.via != u32::MAX { b.via } else { a.via },
        }
    }
}

impl OrderedSemiring for WitnessedMinPlus {
    fn cmp_elems(a: &WitnessedDist, b: &WitnessedDist) -> Ordering {
        a.cmp(b)
    }
}

/// The boolean semiring `({0,1}, ∨, ∧, 0, 1)`.
///
/// The paper uses it to define the cancellation-free density `ρ̂_{ST}` of a
/// product (§2.1): the density of `Ŝ·T̂` over booleans, ignoring zeros that
/// arise from cancellation. (Min-plus has no cancellation, so for the
/// distance tools `ρ̂_{ST} = ρ_P`.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Boolean;

impl Semiring for Boolean {
    type Elem = bool;

    fn zero() -> bool {
        false
    }
    fn one() -> bool {
        true
    }
    fn add(a: &bool, b: &bool) -> bool {
        *a || *b
    }
    fn mul(a: &bool, b: &bool) -> bool {
        *a && *b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_semiring_axioms<S: Semiring>(samples: &[S::Elem]) {
        for a in samples {
            // Identities.
            assert_eq!(S::add(a, &S::zero()), *a);
            assert_eq!(S::add(&S::zero(), a), *a);
            assert_eq!(S::mul(a, &S::one()), *a);
            assert_eq!(S::mul(&S::one(), a), *a);
            // Annihilation.
            assert!(S::is_zero(&S::mul(a, &S::zero())));
            assert!(S::is_zero(&S::mul(&S::zero(), a)));
            for b in samples {
                // Commutative addition.
                assert_eq!(S::add(a, b), S::add(b, a));
                for c in samples {
                    // Associativity.
                    assert_eq!(S::add(&S::add(a, b), c), S::add(a, &S::add(b, c)));
                    assert_eq!(S::mul(&S::mul(a, b), c), S::mul(a, &S::mul(b, c)));
                    // Distributivity.
                    assert_eq!(S::mul(a, &S::add(b, c)), S::add(&S::mul(a, b), &S::mul(a, c)));
                    assert_eq!(S::mul(&S::add(a, b), c), S::add(&S::mul(a, c), &S::mul(b, c)));
                }
            }
        }
    }

    #[test]
    fn minplus_axioms() {
        let samples = [Dist::ZERO, Dist::fin(1), Dist::fin(7), Dist::fin(100), Dist::INF];
        check_semiring_axioms::<MinPlus>(&samples);
    }

    #[test]
    fn aug_minplus_axioms() {
        let samples = [
            AugDist::ZERO,
            AugDist::fin(1, 1),
            AugDist::fin(7, 2),
            AugDist::fin(7, 5),
            AugDist::INF,
        ];
        check_semiring_axioms::<AugMinPlus>(&samples);
    }

    #[test]
    fn boolean_axioms() {
        check_semiring_axioms::<Boolean>(&[false, true]);
    }

    #[test]
    fn witnessed_minplus_identity_and_annihilation() {
        let samples = [
            WitnessedDist::ZERO,
            WitnessedDist::direct(4),
            WitnessedDist::via(4, 2),
            WitnessedDist::via(9, 0),
            WitnessedDist::INF,
        ];
        for a in samples {
            assert_eq!(WitnessedMinPlus::mul(&a, &WitnessedMinPlus::one()), a);
            assert_eq!(WitnessedMinPlus::mul(&WitnessedMinPlus::one(), &a), a);
            assert!(WitnessedMinPlus::is_zero(&WitnessedMinPlus::mul(
                &a,
                &WitnessedMinPlus::zero()
            )));
            assert!(WitnessedMinPlus::is_zero(&WitnessedMinPlus::mul(
                &WitnessedMinPlus::zero(),
                &a
            )));
            assert_eq!(WitnessedMinPlus::add(&a, &WitnessedMinPlus::zero()), a);
            for b in samples {
                // Addition is min; the distance projection is MinPlus.
                assert_eq!(WitnessedMinPlus::add(&a, &b), a.min(b));
                assert_eq!(
                    WitnessedMinPlus::mul(&a, &b).to_dist(),
                    MinPlus::mul(&a.to_dist(), &b.to_dist())
                );
                for c in samples {
                    // Associativity (including witness component).
                    assert_eq!(
                        WitnessedMinPlus::mul(&WitnessedMinPlus::mul(&a, &b), &c),
                        WitnessedMinPlus::mul(&a, &WitnessedMinPlus::mul(&b, &c))
                    );
                }
            }
        }
    }

    #[test]
    fn witnessed_mul_prefers_right_witness() {
        let a = WitnessedDist::via(3, 7);
        let b = WitnessedDist::via(4, 2);
        assert_eq!(WitnessedMinPlus::mul(&a, &b), WitnessedDist::via(7, 2));
        let b = WitnessedDist::direct(4);
        assert_eq!(WitnessedMinPlus::mul(&a, &b), WitnessedDist::via(7, 7));
    }

    #[test]
    fn ordered_addition_is_min() {
        let samples = [Dist::ZERO, Dist::fin(3), Dist::fin(9), Dist::INF];
        for a in samples {
            for b in samples {
                assert_eq!(MinPlus::add(&a, &b), MinPlus::min_elem(a, b));
            }
        }
        // Zero must be the maximum of the order.
        for a in samples {
            assert_ne!(MinPlus::cmp_elems(&a, &MinPlus::zero()), Ordering::Greater);
        }
    }

    #[test]
    fn aug_ordered_addition_is_min() {
        let samples = [AugDist::ZERO, AugDist::fin(3, 1), AugDist::fin(3, 2), AugDist::INF];
        for a in samples {
            for b in samples {
                assert_eq!(AugMinPlus::add(&a, &b), AugMinPlus::min_elem(a, b));
            }
        }
    }
}
