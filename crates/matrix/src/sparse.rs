use crate::{Entry, OrderedSemiring, Semiring};

/// One sparse row: non-zero entries sorted by column index.
///
/// "Zero" means the semiring's additive identity (`∞` for min-plus); zero
/// entries are never stored.
///
/// # Example
///
/// ```
/// use cc_matrix::{Dist, MinPlus, SparseRow};
///
/// let mut row = SparseRow::new();
/// row.accumulate::<MinPlus>(3, Dist::fin(9));
/// row.accumulate::<MinPlus>(3, Dist::fin(4)); // min-combines
/// assert_eq!(row.get(3), Some(&Dist::fin(4)));
/// assert_eq!(row.nnz(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SparseRow<E> {
    entries: Vec<(u32, E)>,
}

impl<E: Clone + PartialEq> SparseRow<E> {
    /// An empty (all-zero) row.
    pub fn new() -> Self {
        SparseRow { entries: Vec::new() }
    }

    /// Builds a row from `(col, val)` pairs that are already sorted by
    /// strictly increasing column and contain no semiring zeros.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the input violates the ordering invariant.
    pub fn from_sorted(entries: Vec<(u32, E)>) -> Self {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "columns must be strictly increasing"
        );
        SparseRow { entries }
    }

    /// Builds a row by accumulating arbitrary `(col, val)` pairs with
    /// semiring addition, dropping zeros.
    pub fn from_entries<S: Semiring<Elem = E>>(mut entries: Vec<(u32, E)>) -> Self {
        entries.sort_by_key(|(c, _)| *c);
        let mut out: Vec<(u32, E)> = Vec::with_capacity(entries.len());
        for (c, v) in entries {
            match out.last_mut() {
                Some((lc, lv)) if *lc == c => *lv = S::add(lv, &v),
                _ => out.push((c, v)),
            }
        }
        out.retain(|(_, v)| !S::is_zero(v));
        SparseRow { entries: out }
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Whether the row is all zeros.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The value at `col`, if non-zero.
    pub fn get(&self, col: u32) -> Option<&E> {
        self.entries.binary_search_by_key(&col, |(c, _)| *c).ok().map(|i| &self.entries[i].1)
    }

    /// Iterates over `(col, value)` pairs in column order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &E)> {
        self.entries.iter().map(|(c, v)| (*c, v))
    }

    /// Adds `val` at `col` with semiring addition, dropping the entry if the
    /// result is zero.
    pub fn accumulate<S: Semiring<Elem = E>>(&mut self, col: u32, val: E) {
        match self.entries.binary_search_by_key(&col, |(c, _)| *c) {
            Ok(i) => {
                let combined = S::add(&self.entries[i].1, &val);
                if S::is_zero(&combined) {
                    self.entries.remove(i);
                } else {
                    self.entries[i].1 = combined;
                }
            }
            Err(i) => {
                if !S::is_zero(&val) {
                    self.entries.insert(i, (col, val));
                }
            }
        }
    }

    /// Overwrites the value at `col` (removing it if `val` is zero).
    pub fn set<S: Semiring<Elem = E>>(&mut self, col: u32, val: E) {
        match self.entries.binary_search_by_key(&col, |(c, _)| *c) {
            Ok(i) => {
                if S::is_zero(&val) {
                    self.entries.remove(i);
                } else {
                    self.entries[i].1 = val;
                }
            }
            Err(i) => {
                if !S::is_zero(&val) {
                    self.entries.insert(i, (col, val));
                }
            }
        }
    }

    /// Keeps only the `rho` smallest entries by `(value, column)` order — the
    /// paper's row filtering (§2.2).
    pub fn filter_smallest<S: OrderedSemiring<Elem = E>>(&mut self, rho: usize) {
        if self.entries.len() <= rho {
            return;
        }
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        order.sort_by(|&i, &j| {
            S::cmp_elems(&self.entries[i].1, &self.entries[j].1)
                .then(self.entries[i].0.cmp(&self.entries[j].0))
        });
        order.truncate(rho);
        order.sort_unstable();
        self.entries = order.into_iter().map(|i| self.entries[i].clone()).collect();
    }

    /// The cutoff of this row for threshold `rho`: the `rho`-th smallest
    /// `(value, column)` pair, or the largest if fewer than `rho` entries.
    ///
    /// Returns `None` for an empty row. Matches the cutoff definition used by
    /// Lemma 15.
    pub fn cutoff<S: OrderedSemiring<Elem = E>>(&self, rho: usize) -> Option<(E, u32)> {
        if self.entries.is_empty() || rho == 0 {
            return None;
        }
        let mut pairs: Vec<(&E, u32)> = self.entries.iter().map(|(c, v)| (v, *c)).collect();
        pairs.sort_by(|a, b| S::cmp_elems(a.0, b.0).then(a.1.cmp(&b.1)));
        let idx = rho.min(pairs.len()) - 1;
        Some((pairs[idx].0.clone(), pairs[idx].1))
    }
}

/// An `n × n` sparse matrix over a semiring, stored row-major.
///
/// This is the logical object the Congested Clique algorithms distribute:
/// node `v` holds row `v` (and, for the right-hand operand of a product,
/// column `v`). The distributed algorithms in `cc-matmul` operate on
/// per-node slices; this type also provides sequential reference operations
/// for differential testing.
///
/// # Example
///
/// ```
/// use cc_matrix::{Dist, MinPlus, SparseMatrix};
///
/// let mut m = SparseMatrix::zeros(4);
/// m.set(0, 1, Dist::fin(5));
/// assert_eq!(m.nnz(), 1);
/// assert_eq!(m.density(), 1); // smallest rho with nnz <= rho * n
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseMatrix<E> {
    n: usize,
    rows: Vec<SparseRow<E>>,
}

impl<E: Clone + PartialEq> SparseMatrix<E> {
    /// The all-zero `n × n` matrix.
    pub fn zeros(n: usize) -> Self {
        SparseMatrix { n, rows: vec![SparseRow::new(); n] }
    }

    /// The multiplicative identity: `one()` on the diagonal.
    pub fn identity<S: Semiring<Elem = E>>(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for v in 0..n {
            m.rows[v] = SparseRow::from_sorted(vec![(v as u32, S::one())]);
        }
        m
    }

    /// Builds a matrix from rows (must have length `n` each conceptually;
    /// the vector length fixes `n`).
    pub fn from_rows(rows: Vec<SparseRow<E>>) -> Self {
        SparseMatrix { n: rows.len(), rows }
    }

    /// Builds a matrix from arbitrary entries, accumulating duplicates with
    /// semiring addition.
    ///
    /// # Panics
    ///
    /// Panics if an entry lies outside `n × n`.
    pub fn from_entries<S: Semiring<Elem = E>>(
        n: usize,
        entries: impl IntoIterator<Item = Entry<E>>,
    ) -> Self {
        let mut per_row: Vec<Vec<(u32, E)>> = vec![Vec::new(); n];
        for e in entries {
            assert!((e.row as usize) < n && (e.col as usize) < n, "entry out of bounds");
            per_row[e.row as usize].push((e.col, e.val));
        }
        SparseMatrix { n, rows: per_row.into_iter().map(SparseRow::from_entries::<S>).collect() }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Row `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn row(&self, v: usize) -> &SparseRow<E> {
        &self.rows[v]
    }

    /// Mutable row `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn row_mut(&mut self, v: usize) -> &mut SparseRow<E> {
        &mut self.rows[v]
    }

    /// All rows in order.
    pub fn rows(&self) -> &[SparseRow<E>] {
        &self.rows
    }

    /// The value at `(row, col)`, if non-zero.
    pub fn get(&self, row: usize, col: usize) -> Option<&E> {
        self.rows[row].get(col as u32)
    }

    /// Overwrites `(row, col)`; requires knowing the semiring only through
    /// `PartialEq` with zero, so it takes the value directly and stores it
    /// unconditionally (use [`SparseMatrix::set_in`] to drop zeros).
    pub fn set(&mut self, row: usize, col: usize, val: E) {
        match self.rows[row].entries.binary_search_by_key(&(col as u32), |(c, _)| *c) {
            Ok(i) => self.rows[row].entries[i].1 = val,
            Err(i) => self.rows[row].entries.insert(i, (col as u32, val)),
        }
    }

    /// Overwrites `(row, col)` with semiring-zero awareness.
    pub fn set_in<S: Semiring<Elem = E>>(&mut self, row: usize, col: usize, val: E) {
        self.rows[row].set::<S>(col as u32, val);
    }

    /// Total number of stored entries.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(SparseRow::nnz).sum()
    }

    /// The paper's density `ρ`: the smallest positive integer with
    /// `nnz ≤ ρ·n`.
    pub fn density(&self) -> usize {
        self.nnz().div_ceil(self.n).max(1)
    }

    /// Iterates over all entries.
    pub fn entries(&self) -> impl Iterator<Item = Entry<E>> + '_ {
        self.rows
            .iter()
            .enumerate()
            .flat_map(|(r, row)| row.iter().map(move |(c, v)| Entry::new(r as u32, c, v.clone())))
    }

    /// Number of non-zeros in each column.
    pub fn col_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n];
        for row in &self.rows {
            for (c, _) in row.iter() {
                counts[c as usize] += 1;
            }
        }
        counts
    }

    /// The transpose.
    pub fn transpose(&self) -> SparseMatrix<E> {
        let mut rows: Vec<Vec<(u32, E)>> = vec![Vec::new(); self.n];
        for (r, row) in self.rows.iter().enumerate() {
            for (c, v) in row.iter() {
                rows[c as usize].push((r as u32, v.clone()));
            }
        }
        SparseMatrix { n: self.n, rows: rows.into_iter().map(SparseRow::from_sorted).collect() }
    }

    /// Sequential reference product `self · other` over semiring `S`.
    ///
    /// Used as ground truth in differential tests of the distributed
    /// algorithms; cost is proportional to the number of elementary products.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn multiply<S: Semiring<Elem = E>>(&self, other: &SparseMatrix<E>) -> SparseMatrix<E> {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let mut rows = Vec::with_capacity(self.n);
        for row in &self.rows {
            let mut acc: Vec<(u32, E)> = Vec::new();
            for (w, a) in row.iter() {
                for (u, b) in other.rows[w as usize].iter() {
                    acc.push((u, S::mul(a, b)));
                }
            }
            rows.push(SparseRow::from_entries::<S>(acc));
        }
        SparseMatrix { n: self.n, rows }
    }

    /// The ρ-filtered matrix `P̄` (§2.2): each row keeps its `rho` smallest
    /// entries by `(value, column)` order.
    pub fn filtered<S: OrderedSemiring<Elem = E>>(&self, rho: usize) -> SparseMatrix<E> {
        let mut out = self.clone();
        for row in &mut out.rows {
            row.filter_smallest::<S>(rho);
        }
        out
    }

    /// Elementwise combination with semiring addition (e.g. min of two
    /// distance estimates).
    pub fn add_elementwise<S: Semiring<Elem = E>>(
        &self,
        other: &SparseMatrix<E>,
    ) -> SparseMatrix<E> {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let mut out = self.clone();
        for (r, row) in other.rows.iter().enumerate() {
            for (c, v) in row.iter() {
                out.rows[r].accumulate::<S>(c, v.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AugDist, AugMinPlus, Dist, MinPlus};

    fn line_graph(n: usize) -> SparseMatrix<Dist> {
        // Path 0-1-2-...-(n-1), unit weights, with zero diagonal.
        let mut m = SparseMatrix::identity::<MinPlus>(n);
        for v in 0..n - 1 {
            m.set(v, v + 1, Dist::fin(1));
            m.set(v + 1, v, Dist::fin(1));
        }
        m
    }

    #[test]
    fn row_accumulate_is_min() {
        let mut row = SparseRow::new();
        row.accumulate::<MinPlus>(2, Dist::fin(5));
        row.accumulate::<MinPlus>(2, Dist::fin(9));
        row.accumulate::<MinPlus>(1, Dist::fin(7));
        assert_eq!(row.get(2), Some(&Dist::fin(5)));
        assert_eq!(row.nnz(), 2);
        // Accumulating zero (INF) changes nothing.
        row.accumulate::<MinPlus>(4, Dist::INF);
        assert_eq!(row.nnz(), 2);
    }

    #[test]
    fn row_from_entries_dedupes_and_drops_zeros() {
        let row = SparseRow::from_entries::<MinPlus>(vec![
            (3, Dist::fin(4)),
            (1, Dist::INF),
            (3, Dist::fin(2)),
            (0, Dist::fin(9)),
        ]);
        assert_eq!(row.iter().collect::<Vec<_>>(), vec![(0, &Dist::fin(9)), (3, &Dist::fin(2))]);
    }

    #[test]
    fn row_filter_keeps_smallest_with_column_tiebreak() {
        let mut row = SparseRow::from_entries::<MinPlus>(vec![
            (0, Dist::fin(5)),
            (1, Dist::fin(3)),
            (2, Dist::fin(5)),
            (3, Dist::fin(1)),
        ]);
        row.filter_smallest::<MinPlus>(2);
        assert_eq!(row.iter().collect::<Vec<_>>(), vec![(1, &Dist::fin(3)), (3, &Dist::fin(1))]);

        // Tie on value 5: column 0 beats column 2.
        let mut row =
            SparseRow::from_entries::<MinPlus>(vec![(2, Dist::fin(5)), (0, Dist::fin(5))]);
        row.filter_smallest::<MinPlus>(1);
        assert_eq!(row.iter().collect::<Vec<_>>(), vec![(0, &Dist::fin(5))]);
    }

    #[test]
    fn row_cutoff_matches_filter_boundary() {
        let row = SparseRow::from_entries::<MinPlus>(vec![
            (0, Dist::fin(5)),
            (1, Dist::fin(3)),
            (2, Dist::fin(5)),
        ]);
        assert_eq!(row.cutoff::<MinPlus>(2), Some((Dist::fin(5), 0)));
        assert_eq!(row.cutoff::<MinPlus>(10), Some((Dist::fin(5), 2)));
        assert_eq!(SparseRow::<Dist>::new().cutoff::<MinPlus>(3), None);
    }

    #[test]
    fn matrix_density_is_ceil() {
        let mut m = SparseMatrix::<Dist>::zeros(4);
        assert_eq!(m.density(), 1); // smallest *positive* integer
        for c in 0..4 {
            m.set(0, c, Dist::fin(1));
        }
        m.set(1, 0, Dist::fin(1));
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.density(), 2);
    }

    #[test]
    fn transpose_involution() {
        let m = line_graph(5);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn multiply_computes_two_hop_distances() {
        let m = line_graph(4);
        let m2 = m.multiply::<MinPlus>(&m);
        assert_eq!(m2.get(0, 2), Some(&Dist::fin(2)));
        assert_eq!(m2.get(0, 3), None); // 3 hops away
        let m4 = m2.multiply::<MinPlus>(&m2);
        assert_eq!(m4.get(0, 3), Some(&Dist::fin(3)));
    }

    #[test]
    fn multiply_matches_identity() {
        let m = line_graph(6);
        let id = SparseMatrix::identity::<MinPlus>(6);
        assert_eq!(m.multiply::<MinPlus>(&id), m);
        assert_eq!(id.multiply::<MinPlus>(&m), m);
    }

    #[test]
    fn augmented_powers_track_hops() {
        let mut w = SparseMatrix::identity::<AugMinPlus>(3);
        w.set(0, 1, AugDist::fin(5, 1));
        w.set(1, 0, AugDist::fin(5, 1));
        w.set(1, 2, AugDist::fin(1, 1));
        w.set(2, 1, AugDist::fin(1, 1));
        let w2 = w.multiply::<AugMinPlus>(&w);
        assert_eq!(w2.get(0, 2), Some(&AugDist::fin(6, 2)));
    }

    #[test]
    fn filtered_matrix_matches_row_filter() {
        let m = line_graph(6);
        let m2 = m.multiply::<MinPlus>(&m);
        let f = m2.filtered::<MinPlus>(2);
        for v in 0..6 {
            assert!(f.row(v).nnz() <= 2);
            let mut expect = m2.row(v).clone();
            expect.filter_smallest::<MinPlus>(2);
            assert_eq!(f.row(v), &expect);
        }
    }

    #[test]
    fn add_elementwise_takes_min() {
        let mut a = SparseMatrix::<Dist>::zeros(2);
        a.set(0, 1, Dist::fin(5));
        let mut b = SparseMatrix::<Dist>::zeros(2);
        b.set(0, 1, Dist::fin(3));
        b.set(1, 0, Dist::fin(9));
        let c = a.add_elementwise::<MinPlus>(&b);
        assert_eq!(c.get(0, 1), Some(&Dist::fin(3)));
        assert_eq!(c.get(1, 0), Some(&Dist::fin(9)));
    }

    #[test]
    fn from_entries_accumulates() {
        let m = SparseMatrix::from_entries::<MinPlus>(
            3,
            vec![
                Entry::new(0, 1, Dist::fin(4)),
                Entry::new(0, 1, Dist::fin(2)),
                Entry::new(2, 2, Dist::fin(1)),
            ],
        );
        assert_eq!(m.get(0, 1), Some(&Dist::fin(2)));
        assert_eq!(m.get(2, 2), Some(&Dist::fin(1)));
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn col_counts_counts() {
        let m = line_graph(4);
        let counts = m.col_counts();
        assert_eq!(counts, vec![2, 3, 3, 2]);
    }
}
