use std::fmt;

use cc_clique::Payload;

/// A distance value: a non-negative integer or infinity.
///
/// The paper assumes non-negative integer edge weights bounded by `O(n^c)`,
/// so a `u64` with a dedicated infinity sentinel covers the whole value
/// space. `Dist` is the element type of the min-plus semiring
/// ([`MinPlus`](crate::MinPlus)): addition of the semiring is `min`,
/// multiplication is saturating `+` (so `∞ + x = ∞`).
///
/// # Example
///
/// ```
/// use cc_matrix::Dist;
///
/// let d = Dist::fin(3);
/// assert!(d < Dist::INF);
/// assert_eq!(d.checked_add(Dist::fin(4)), Dist::fin(7));
/// assert_eq!(Dist::INF.checked_add(d), Dist::INF);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Dist(u64);

impl Dist {
    /// The additive identity of min-plus: no path / infinite distance.
    pub const INF: Dist = Dist(u64::MAX);
    /// Zero distance (the multiplicative identity of min-plus).
    pub const ZERO: Dist = Dist(0);

    /// A finite distance.
    ///
    /// # Panics
    ///
    /// Panics if `w == u64::MAX`, which is reserved for [`Dist::INF`].
    pub fn fin(w: u64) -> Dist {
        assert_ne!(w, u64::MAX, "u64::MAX is reserved for Dist::INF");
        Dist(w)
    }

    /// Reinterprets a raw `u64` from the wire encoding ([`Dist::raw`]):
    /// `u64::MAX` is [`Dist::INF`], everything else is finite. The inverse
    /// of `raw()`, and the one place decoding spells the sentinel.
    pub fn from_raw(raw: u64) -> Dist {
        Dist(raw)
    }

    /// Whether this distance is finite.
    pub fn is_finite(self) -> bool {
        self != Dist::INF
    }

    /// The underlying value of a finite distance.
    pub fn value(self) -> Option<u64> {
        self.is_finite().then_some(self.0)
    }

    /// The underlying value, treating infinity as `u64::MAX`.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Infinity-absorbing addition of path lengths.
    pub fn checked_add(self, other: Dist) -> Dist {
        if self.is_finite() && other.is_finite() {
            Dist(self.0.checked_add(other.0).expect("distance overflow"))
        } else {
            Dist::INF
        }
    }
}

impl fmt::Display for Dist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_finite() {
            write!(f, "{}", self.0)
        } else {
            write!(f, "inf")
        }
    }
}

impl Payload for Dist {
    fn words(&self) -> usize {
        1
    }
}

/// An element of the **augmented min-plus semiring** (§3.1): a path length
/// together with its hop count.
///
/// Ordering is lexicographic — first by distance, then by hops — which is the
/// order `≺` the paper uses to make `k`-nearest and source-detection outputs
/// *hop-consistent* (Lemma 17): every prefix of a recorded shortest path is
/// itself recorded.
///
/// A pair fits in `O(log n)` bits (weights are `poly(n)`, hops `≤ n`), so a
/// value counts as one message word on the wire.
///
/// # Example
///
/// ```
/// use cc_matrix::AugDist;
///
/// let a = AugDist::fin(5, 2);
/// let b = AugDist::fin(5, 3);
/// assert!(a < b); // same length, fewer hops wins
/// assert_eq!(a.combine(b), AugDist::fin(10, 5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AugDist {
    /// Path length (`u64::MAX` = unreachable).
    pub dist: u64,
    /// Number of edges on the path (`u32::MAX` = unreachable).
    pub hops: u32,
}

impl AugDist {
    /// The additive identity: unreachable.
    pub const INF: AugDist = AugDist { dist: u64::MAX, hops: u32::MAX };
    /// The multiplicative identity: the empty path.
    pub const ZERO: AugDist = AugDist { dist: 0, hops: 0 };

    /// A finite (length, hops) pair.
    ///
    /// # Panics
    ///
    /// Panics if either component equals its sentinel value.
    pub fn fin(dist: u64, hops: u32) -> AugDist {
        assert_ne!(dist, u64::MAX, "u64::MAX is reserved for AugDist::INF");
        assert_ne!(hops, u32::MAX, "u32::MAX is reserved for AugDist::INF");
        AugDist { dist, hops }
    }

    /// Whether this value denotes a real path.
    pub fn is_finite(self) -> bool {
        self.dist != u64::MAX
    }

    /// Path concatenation: adds lengths and hop counts, absorbing infinity.
    /// A sum that overflows (or lands on a reserved `MAX` sentinel) clamps
    /// to [`AugDist::INF`]: a distance too large to represent is
    /// indistinguishable from unreachable, and this runs on serving paths
    /// where a panic would kill the worker.
    pub fn combine(self, other: AugDist) -> AugDist {
        if !(self.is_finite() && other.is_finite()) {
            return AugDist::INF;
        }
        match (self.dist.checked_add(other.dist), self.hops.checked_add(other.hops)) {
            (Some(dist), Some(hops)) if dist != u64::MAX && hops != u32::MAX => {
                AugDist { dist, hops }
            }
            _ => AugDist::INF,
        }
    }

    /// Drops the hop count, giving a plain [`Dist`].
    pub fn to_dist(self) -> Dist {
        if self.is_finite() {
            Dist::fin(self.dist)
        } else {
            Dist::INF
        }
    }
}

impl fmt::Display for AugDist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_finite() {
            write!(f, "{}@{}h", self.dist, self.hops)
        } else {
            write!(f, "inf")
        }
    }
}

impl Payload for AugDist {
    fn words(&self) -> usize {
        1
    }
}

/// A distance together with the **witness** that produced it in a distance
/// product (§3.1, "Recovering paths"): for `P = S ⋆ T`, the entry `P[u,v]`
/// carries a node `via = w` with `P[u,v] = S[u,w] + T[w,v]`.
///
/// `via == u32::MAX` means "no witness" (identity/diagonal entries, original
/// edges, or infinite distances — the canonical zero). Ordering is by
/// `(dist, via)`, so ties pick the smallest witness deterministically.
///
/// # Example
///
/// ```
/// use cc_matrix::WitnessedDist;
///
/// let d = WitnessedDist::via(10, 3);
/// assert_eq!(d.witness(), Some(3));
/// assert!(WitnessedDist::via(9, 7) < d); // distance dominates
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WitnessedDist {
    /// Path length (`u64::MAX` = unreachable).
    pub dist: u64,
    /// The contraction index achieving the minimum (`u32::MAX` = none).
    pub via: u32,
}

impl WitnessedDist {
    /// The additive identity: unreachable, no witness.
    pub const INF: WitnessedDist = WitnessedDist { dist: u64::MAX, via: u32::MAX };
    /// The multiplicative identity: the empty path, no witness.
    pub const ZERO: WitnessedDist = WitnessedDist { dist: 0, via: u32::MAX };

    /// A finite distance without a witness (an original edge).
    ///
    /// # Panics
    ///
    /// Panics if `dist == u64::MAX` (reserved for [`WitnessedDist::INF`]).
    pub fn direct(dist: u64) -> WitnessedDist {
        assert_ne!(dist, u64::MAX, "u64::MAX is reserved for WitnessedDist::INF");
        WitnessedDist { dist, via: u32::MAX }
    }

    /// A finite distance achieved through node `via`.
    ///
    /// # Panics
    ///
    /// Panics if either field equals its sentinel value.
    pub fn via(dist: u64, via: u32) -> WitnessedDist {
        assert_ne!(dist, u64::MAX, "u64::MAX is reserved for WitnessedDist::INF");
        assert_ne!(via, u32::MAX, "u32::MAX means no witness");
        WitnessedDist { dist, via }
    }

    /// Whether this value denotes a real path.
    pub fn is_finite(self) -> bool {
        self.dist != u64::MAX
    }

    /// The witness, if one was recorded.
    pub fn witness(self) -> Option<usize> {
        (self.via != u32::MAX && self.is_finite()).then_some(self.via as usize)
    }

    /// Drops the witness, giving a plain [`Dist`].
    pub fn to_dist(self) -> Dist {
        if self.is_finite() {
            Dist::fin(self.dist)
        } else {
            Dist::INF
        }
    }
}

impl fmt::Display for WitnessedDist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.is_finite() {
            write!(f, "inf")
        } else if self.via == u32::MAX {
            write!(f, "{}", self.dist)
        } else {
            write!(f, "{} via {}", self.dist, self.via)
        }
    }
}

impl Payload for WitnessedDist {
    fn words(&self) -> usize {
        1
    }
}

/// An element with an order-preserving embedding into a finite integer range
/// — the value space `R'` that Theorem 14's cutoff binary search (Lemma 15)
/// searches over.
///
/// Requirements: `a < b ⟺ a.to_ordinal() < b.to_ordinal()`, and
/// `from_ordinal` must round *down* to a representable element (it is only
/// ever used on midpoints between two ordinals of real elements, so exact
/// inverse mapping is not required — monotonicity is).
///
/// # Example
///
/// ```
/// use cc_matrix::{AugDist, Searchable};
///
/// let a = AugDist::fin(3, 1);
/// let b = AugDist::fin(3, 2);
/// assert!(a.to_ordinal() < b.to_ordinal());
/// assert_eq!(AugDist::from_ordinal(a.to_ordinal()), a);
/// ```
pub trait Searchable: Sized {
    /// Order-preserving encoding into `u128`.
    fn to_ordinal(&self) -> u128;
    /// Decoding; must be monotone (see trait docs).
    fn from_ordinal(o: u128) -> Self;
}

impl Searchable for Dist {
    fn to_ordinal(&self) -> u128 {
        self.0 as u128
    }
    fn from_ordinal(o: u128) -> Self {
        Dist(o.min(u64::MAX as u128) as u64)
    }
}

/// Width of the hops field inside [`AugDist`] ordinals. Hop counts are
/// bounded by the number of nodes, so 20 bits cover any clique up to a
/// million nodes while keeping the binary-search range (hence the
/// `O(log W)` term of Theorem 14) tight.
const HOP_BITS: u32 = 20;

impl Searchable for AugDist {
    fn to_ordinal(&self) -> u128 {
        debug_assert!(
            self.hops < (1 << HOP_BITS) || *self == AugDist::INF,
            "hop count exceeds the ordinal encoding width"
        );
        let hops = (self.hops as u128).min((1 << HOP_BITS) - 1);
        ((self.dist as u128) << HOP_BITS) | hops
    }
    fn from_ordinal(o: u128) -> Self {
        let dist = (o >> HOP_BITS).min(u64::MAX as u128) as u64;
        let hops = (o & ((1 << HOP_BITS) - 1)) as u32;
        AugDist { dist, hops }
    }
}

/// One non-zero matrix entry in transit: `(row, col, value)`.
///
/// Following the paper's accounting, an entry — two packed indices plus an
/// `O(log n)`-bit semiring element — is a single `O(log n)`-bit message, so
/// its wire size equals the wire size of its value.
///
/// # Example
///
/// ```
/// use cc_clique::Payload;
/// use cc_matrix::{Dist, Entry};
///
/// let e = Entry::new(2, 5, Dist::fin(7));
/// assert_eq!(e.words(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Entry<E> {
    /// Row index.
    pub row: u32,
    /// Column index.
    pub col: u32,
    /// The (non-zero) value.
    pub val: E,
}

impl<E> Entry<E> {
    /// Creates an entry.
    pub fn new(row: u32, col: u32, val: E) -> Self {
        Entry { row, col, val }
    }

    /// The `(row, col)` position.
    pub fn pos(&self) -> (u32, u32) {
        (self.row, self.col)
    }
}

impl<E: Payload> Payload for Entry<E> {
    fn words(&self) -> usize {
        self.val.words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_ordering_and_arith() {
        assert!(Dist::ZERO < Dist::fin(1));
        assert!(Dist::fin(10) < Dist::INF);
        assert_eq!(Dist::fin(2).checked_add(Dist::fin(3)), Dist::fin(5));
        assert_eq!(Dist::INF.checked_add(Dist::INF), Dist::INF);
        assert_eq!(Dist::fin(2).value(), Some(2));
        assert_eq!(Dist::INF.value(), None);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn dist_fin_rejects_sentinel() {
        let _ = Dist::fin(u64::MAX);
    }

    #[test]
    fn aug_order_is_lexicographic() {
        assert!(AugDist::fin(3, 9) < AugDist::fin(4, 0));
        assert!(AugDist::fin(3, 1) < AugDist::fin(3, 2));
        assert!(AugDist::fin(3, 1) < AugDist::INF);
        assert!(AugDist::ZERO < AugDist::fin(0, 1));
    }

    #[test]
    fn aug_combine_tracks_hops() {
        let a = AugDist::fin(2, 1).combine(AugDist::fin(5, 3));
        assert_eq!(a, AugDist::fin(7, 4));
        assert_eq!(AugDist::INF.combine(AugDist::ZERO), AugDist::INF);
        assert_eq!(a.to_dist(), Dist::fin(7));
        assert_eq!(AugDist::INF.to_dist(), Dist::INF);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Dist::fin(4).to_string(), "4");
        assert_eq!(Dist::INF.to_string(), "inf");
        assert_eq!(AugDist::fin(4, 2).to_string(), "4@2h");
    }

    #[test]
    fn entry_is_one_word_for_scalar_values() {
        assert_eq!(Entry::new(0, 0, Dist::ZERO).words(), 1);
        assert_eq!(Entry::new(0, 0, AugDist::ZERO).words(), 1);
        assert_eq!(Entry::new(1, 2, Dist::fin(9)).pos(), (1, 2));
    }
}
