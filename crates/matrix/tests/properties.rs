//! Property-based tests for semiring laws and sparse-matrix invariants.

use cc_matrix::{
    AugDist, AugMinPlus, Dist, Entry, MinPlus, OrderedSemiring, Semiring, SparseMatrix,
};
use proptest::prelude::*;

fn arb_dist() -> impl Strategy<Value = Dist> {
    prop_oneof![
        3 => (0u64..1_000_000).prop_map(Dist::fin),
        1 => Just(Dist::INF),
    ]
}

fn arb_aug() -> impl Strategy<Value = AugDist> {
    prop_oneof![
        3 => (0u64..1_000_000, 0u32..1_000).prop_map(|(d, h)| AugDist::fin(d, h)),
        1 => Just(AugDist::INF),
    ]
}

fn arb_matrix(n: usize, max_entries: usize) -> impl Strategy<Value = SparseMatrix<Dist>> {
    prop::collection::vec((0..n as u32, 0..n as u32, 0u64..1_000), 0..max_entries).prop_map(
        move |entries| {
            SparseMatrix::from_entries::<MinPlus>(
                n,
                entries.into_iter().map(|(r, c, w)| Entry::new(r, c, Dist::fin(w))),
            )
        },
    )
}

proptest! {
    #[test]
    fn minplus_assoc_comm_distributive(a in arb_dist(), b in arb_dist(), c in arb_dist()) {
        prop_assert_eq!(MinPlus::add(&a, &b), MinPlus::add(&b, &a));
        prop_assert_eq!(
            MinPlus::add(&MinPlus::add(&a, &b), &c),
            MinPlus::add(&a, &MinPlus::add(&b, &c))
        );
        prop_assert_eq!(
            MinPlus::mul(&a, &MinPlus::add(&b, &c)),
            MinPlus::add(&MinPlus::mul(&a, &b), &MinPlus::mul(&a, &c))
        );
    }

    #[test]
    fn aug_minplus_add_is_min(a in arb_aug(), b in arb_aug()) {
        let sum = AugMinPlus::add(&a, &b);
        prop_assert!(sum == a || sum == b);
        prop_assert_eq!(sum, AugMinPlus::min_elem(a, b));
    }

    #[test]
    fn matrix_multiply_identity(m in arb_matrix(8, 40)) {
        let id = SparseMatrix::identity::<MinPlus>(8);
        prop_assert_eq!(&m.multiply::<MinPlus>(&id), &m);
        prop_assert_eq!(&id.multiply::<MinPlus>(&m), &m);
    }

    #[test]
    fn matrix_multiply_associative(
        a in arb_matrix(6, 20),
        b in arb_matrix(6, 20),
        c in arb_matrix(6, 20),
    ) {
        let left = a.multiply::<MinPlus>(&b).multiply::<MinPlus>(&c);
        let right = a.multiply::<MinPlus>(&b.multiply::<MinPlus>(&c));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn filtering_is_idempotent_and_bounded(m in arb_matrix(8, 64), rho in 1usize..6) {
        let f = m.filtered::<MinPlus>(rho);
        prop_assert_eq!(&f.filtered::<MinPlus>(rho), &f);
        for v in 0..8 {
            prop_assert!(f.row(v).nnz() <= rho);
            // Everything kept must be <= everything dropped.
            if let Some((cut, cut_col)) = f.row(v).cutoff::<MinPlus>(rho) {
                for (c, val) in m.row(v).iter() {
                    if f.row(v).get(c).is_none() {
                        prop_assert!(
                            (cut, cut_col) <= (*val, c),
                            "dropped a smaller entry than one kept"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn density_bounds_nnz(m in arb_matrix(8, 64)) {
        let rho = m.density();
        prop_assert!(m.nnz() <= rho * 8);
        prop_assert!(rho == 1 || m.nnz() > (rho - 1) * 8);
    }

    #[test]
    fn transpose_preserves_entries(m in arb_matrix(8, 64)) {
        let t = m.transpose();
        prop_assert_eq!(m.nnz(), t.nnz());
        for e in m.entries() {
            prop_assert_eq!(t.get(e.col as usize, e.row as usize), Some(&e.val));
        }
    }
}
